"""Differential view maintenance vs the coarser strategies (extension).

Three ways to keep a materialized extracted view current as the corpus
evolves, measured across churn rates on the ``chair`` task (the
3-blackbox chain, where sub-page memoization has the most to win):

* ``full``    — from-scratch batch extraction of every page, every
  snapshot (the rebuild the whole subsystem exists to avoid);
* ``perpage`` — per-changed-page re-extraction (``system="noreuse"``):
  tuple-granular at the store, page-granular at the extractor;
* ``delta``   — true differential maintenance (``system="delta"``):
  the snapshot flows as an (adds, dels) delta through the relational
  plan, unchanged sub-page regions replay the IE memo, and the
  classifier falls back per page when propagation is uneconomical.

Every delta generation is compared byte-for-byte against a lockstep
``perpage`` view (all modes publish canonical stores — Theorem 1), and
the per-generation classifier decisions and fallback ratios are
reported. Emits machine-readable ``BENCH_delta.json`` at the repo root
(the ``delta-smoke`` CI job uploads it). Scale knobs:

* ``REPRO_BENCH_DELTA_PAGES``     (default 24)
* ``REPRO_BENCH_DELTA_SNAPSHOTS`` (default 5)
* ``REPRO_BENCH_DELTA_WORK``      (default 1.0)
"""

import json
import os
import tempfile
import time

from conftest import save_table

from repro.corpus import dblife_corpus
from repro.extractors import make_task
from repro.plan.compile import compile_program
from repro.reuse.attribution import extract_page_rows
from repro.serve import MaterializedView, ViewConfig
from repro.timing import Timer, Timings

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_delta.json")

TASK = "chair"           # 3-blackbox chain, DBLife corpus
PAGES = int(os.environ.get("REPRO_BENCH_DELTA_PAGES", "24"))
N_SNAPSHOTS = int(os.environ.get("REPRO_BENCH_DELTA_SNAPSHOTS", "5"))
WORK_SCALE = float(os.environ.get("REPRO_BENCH_DELTA_WORK", "1.0"))
SEED = 301

#: Churn regimes: the paper's DBLife band (96–98 % unchanged) and a
#: Wikipedia-like heavy-churn regime where per-page strategies catch up.
CHURN_RATES = (("low", 0.95), ("high", 0.5))


def run_regime(label, p_unchanged, workdir):
    snapshots = list(
        dblife_corpus(n_pages=PAGES, seed=SEED, p_unchanged=p_unchanged)
        .snapshots(N_SNAPSHOTS))
    task = make_task(TASK, work_scale=WORK_SCALE)
    plan = compile_program(task.program, task.registry)

    delta = MaterializedView(
        ViewConfig(name="delta", task=TASK, system="delta",
                   work_scale=WORK_SCALE),
        os.path.join(workdir, label, "delta"))
    perpage = MaterializedView(
        ViewConfig(name="perpage", task=TASK, system="noreuse",
                   work_scale=WORK_SCALE),
        os.path.join(workdir, label, "perpage"))

    per_snapshot = []
    for snapshot in snapshots:
        rec_delta = delta.apply_snapshot(snapshot)
        rec_perpage = perpage.apply_snapshot(snapshot)
        t0 = time.perf_counter()
        extract_page_rows(plan, list(snapshot.canonical_pages()),
                          Timer(Timings()))
        full_seconds = time.perf_counter() - t0
        # Acceptance: the delta-maintained generation is byte-identical
        # to the per-page-recomputed one — content AND index order.
        gd, gp = delta.generation, perpage.generation
        assert dict(gd.relations) == dict(gp.relations), snapshot.index
        info = rec_delta.delta
        per_snapshot.append({
            "index": snapshot.index,
            "pages_changed": rec_delta.pages_changed,
            "pages_new": rec_delta.pages_new,
            "pages_deleted": rec_delta.pages_deleted,
            "delta_seconds": rec_delta.seconds,
            "perpage_seconds": rec_perpage.seconds,
            "full_seconds": full_seconds,
            "fallback_ratio": info["fallback_ratio"],
            "decisions": info["decisions"],
            "extractor_calls": info["extractor_calls"],
            "memo_hits": info["memo_hits"],
            "byte_identical": True,
        })
    return {
        "p_unchanged": p_unchanged,
        "per_snapshot": per_snapshot,
        "totals": {
            mode: sum(r[f"{mode}_seconds"] for r in per_snapshot[1:])
            for mode in ("delta", "perpage", "full")
        },
    }


def format_regime_table(label, regime):
    lines = [f"--- churn={label} (p_unchanged="
             f"{regime['p_unchanged']}) ---",
             "snapshot     delta   perpage      full  fallback"
             "  extr/memo"]
    for row in regime["per_snapshot"]:
        lines.append(
            f"{row['index']:>8}  {row['delta_seconds']:>8.3f}"
            f"  {row['perpage_seconds']:>8.3f}"
            f"  {row['full_seconds']:>8.3f}"
            f"  {row['fallback_ratio']:>8.2f}"
            f"  {row['extractor_calls']:>5}/{row['memo_hits']}")
    t = regime["totals"]
    lines.append(f"   total  {t['delta']:>8.3f}  {t['perpage']:>8.3f}"
                 f"  {t['full']:>8.3f}   (bootstrap excluded)")
    return "\n".join(lines)


def test_delta_vs_recompute_across_churn():
    results = {"task": TASK, "pages": PAGES, "snapshots": N_SNAPSHOTS,
               "work_scale": WORK_SCALE, "seed": SEED, "churn": {}}
    tables = []
    with tempfile.TemporaryDirectory() as workdir:
        for label, p_unchanged in CHURN_RATES:
            regime = run_regime(label, p_unchanged, workdir)
            results["churn"][label] = regime
            tables.append(format_regime_table(label, regime))

    low = results["churn"]["low"]["totals"]
    results["delta_vs_perpage_speedup_low_churn"] = (
        low["perpage"] / low["delta"] if low["delta"] else 0.0)
    with open(BENCH_JSON, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2, sort_keys=True)

    save_table("delta_maintenance.txt",
               "Differential maintenance vs per-page re-extraction vs "
               "full recompute\n"
               f"task={TASK} pages={PAGES} snapshots={N_SNAPSHOTS} "
               f"work_scale={WORK_SCALE}\n\n"
               + "\n\n".join(tables) + "\n")

    # The headline claim: on the paper's low-churn regime, true
    # differential maintenance beats re-extracting every changed page
    # (steady state; the bootstrap snapshot is identical work for all).
    assert low["delta"] < low["perpage"], low
