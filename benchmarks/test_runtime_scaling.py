"""Execution-runtime scaling (extension).

Page-level IE is embarrassingly parallel, so fanning page batches out
over workers should cut wall time close to linearly while — by the
runtime's determinism contract — changing nothing about the results
or the reuse-file bytes. This benchmark measures pages/sec for the
serial backend vs an auto-chosen 4-worker run (the heavy emulated
blackboxes select the process pool) for No-reuse and Delex on a
synthetic DBLife corpus, and emits a machine-readable
``BENCH_runtime.json`` at the repo root — including the runtime's own
steal/split/shared-memory telemetry for the parallel run.

On machines with fewer than 4 CPUs there is no parallel speedup to
have; the auto chooser detects that and falls back to the serial
backend, so the "parallel" configuration must stay within noise of
the serial one (verdict ``serial_fallback_ok``, floor 0.9x). That
floor is the regression guard for the old behavior, where the chooser
picked the process pool on a 1-CPU box and paid ~6% fork+pickle
overhead for nothing.
"""

import hashlib
import json
import os
import tempfile

from conftest import save_table

from repro.core.runner import (
    canonical_results,
    make_system,
    resolve_executor,
)
from repro.corpus import dblife_corpus
from repro.extractors import make_task

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_runtime.json")

TASK = "chair"           # DBLife task with the heaviest blackboxes
PAGES = int(os.environ.get("REPRO_BENCH_RUNTIME_PAGES", "24"))
N_SNAPSHOTS = 3
WORK_SCALE = float(os.environ.get("REPRO_BENCH_RUNTIME_WORK", "1.0"))
JOBS = 4

NOREUSE_MIN_SPEEDUP = 1.5
SERIAL_FALLBACK_MIN_SPEEDUP = 0.9


def _tree_digest(directory):
    """One digest over every file the run left behind, order-stable."""
    acc = hashlib.sha256()
    for root, _, names in sorted(os.walk(directory)):
        for name in sorted(names):
            path = os.path.join(root, name)
            acc.update(os.path.relpath(path, directory).encode())
            with open(path, "rb") as f:
                acc.update(f.read())
    return acc.hexdigest()


def _measure(task, snapshots, system_name, jobs, workdir):
    """Total seconds, pages/sec, runtime telemetry, and results."""
    executor = resolve_executor(task, jobs=jobs)
    system = make_system(system_name, task, workdir, executor=executor)
    seconds = 0.0
    pages = 0
    outputs = []
    runtime_doc = None
    prev = None
    for snapshot in snapshots:
        result = system.process(snapshot, prev)
        seconds += result.timings.total
        pages += result.pages
        outputs.append(canonical_results(result))
        runtime = result.timings.runtime
        if runtime is not None:
            doc = runtime.to_dict()
            if runtime_doc is None:
                runtime_doc = doc
            else:
                for key in ("steals", "split_pages", "split_parts"):
                    runtime_doc[key] += doc[key]
        prev = snapshot
    backend = executor.name if executor is not None else "serial"
    row = {
        "backend": backend,
        "jobs": jobs,
        "seconds": seconds,
        "pages": pages,
        "pages_per_second": pages / seconds if seconds > 0 else 0.0,
    }
    if runtime_doc is not None:
        row["runtime"] = {key: runtime_doc.get(key) for key in
                          ("backend", "jobs", "steals", "split_pages",
                           "split_parts", "shared_text",
                           "worker_utilization",
                           "worker_busy_fractions")}
    return row, outputs, _tree_digest(workdir)


def run_runtime_scaling():
    task = make_task(TASK, work_scale=WORK_SCALE)
    snapshots = list(dblife_corpus(n_pages=PAGES, seed=71,
                                   p_unchanged=0.7).snapshots(N_SNAPSHOTS))
    data = {
        "task": TASK,
        "pages": PAGES,
        "snapshots": N_SNAPSHOTS,
        "work_scale": WORK_SCALE,
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "systems": {},
    }
    with tempfile.TemporaryDirectory() as tmp_root:
        for name in ("noreuse", "delex"):
            serial, serial_out, serial_digest = _measure(
                task, snapshots, name, 1,
                os.path.join(tmp_root, f"{name}_serial"))
            parallel, parallel_out, parallel_digest = _measure(
                task, snapshots, name, JOBS,
                os.path.join(tmp_root, f"{name}_par"))
            for i, (s, p) in enumerate(zip(serial_out, parallel_out)):
                assert s == p, \
                    f"{name}: parallel run changed snapshot {i} results"
            assert serial_digest == parallel_digest, \
                f"{name}: parallel run changed the reuse-file bytes"
            data["systems"][name] = {
                "serial": serial,
                "parallel": parallel,
                "byte_identical": True,
                "speedup": (serial["seconds"] / parallel["seconds"]
                            if parallel["seconds"] > 0 else 0.0),
            }
    return data


def _render(data):
    lines = [f"Runtime scaling ('{data['task']}', {data['pages']} pages, "
             f"{data['snapshots']} snapshots, jobs={data['jobs']}, "
             f"cpus={data['cpu_count']})",
             f"{'system':<9}{'serial p/s':>12}{'jobs4 p/s':>12}"
             f"{'speedup':>9}{'backend':>9}{'steals':>8}{'splits':>8}"]
    for name, row in data["systems"].items():
        runtime = row["parallel"].get("runtime") or {}
        lines.append(
            f"{name:<9}{row['serial']['pages_per_second']:>12.1f}"
            f"{row['parallel']['pages_per_second']:>12.1f}"
            f"{row['speedup']:>9.2f}{row['parallel']['backend']:>9}"
            f"{runtime.get('steals', 0):>8}"
            f"{runtime.get('split_parts', 0):>8}")
    return "\n".join(lines) + "\n"


def _verdicts(data):
    """Per-system speedup verdicts, honest about the hardware.

    ``ok``: the machine has at least ``jobs`` CPUs and the system met
    its speedup floor. ``serial_fallback_ok``: fewer CPUs than
    workers, so the auto chooser resolved to the serial backend and
    the run stayed within noise of serial (>= 0.9x — the regression
    guard for the chooser picking a losing process pool on one CPU).
    ``fail``: either floor missed.
    """
    cpus = data["cpu_count"] or 1
    verdicts = {}
    for name, row in data["systems"].items():
        if cpus < data["jobs"]:
            fell_back = row["parallel"]["backend"] == "serial"
            within_noise = row["speedup"] >= SERIAL_FALLBACK_MIN_SPEEDUP
            verdicts[name] = ("serial_fallback_ok"
                              if fell_back and within_noise else "fail")
            continue
        if name == "noreuse":
            passed = row["speedup"] >= NOREUSE_MIN_SPEEDUP
        else:
            passed = row["speedup"] > 0.0
        verdicts[name] = "ok" if passed else "fail"
    return verdicts


def test_runtime_scaling(benchmark):
    data = benchmark.pedantic(run_runtime_scaling, rounds=1, iterations=1)
    data["verdicts"] = _verdicts(data)
    with open(BENCH_JSON, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")
    save_table("runtime_scaling.txt", _render(data))

    assert "fail" not in data["verdicts"].values(), data["verdicts"]
    if (os.cpu_count() or 1) < JOBS:
        # Too few CPUs for a speedup to exist; the auto chooser must
        # have fallen back to serial and stayed within noise of it.
        assert set(data["verdicts"].values()) == {"serial_fallback_ok"}
        return
    noreuse = data["systems"]["noreuse"]
    assert noreuse["parallel"]["backend"] == "process"
    # From-scratch extraction is embarrassingly parallel: 4 workers
    # must buy at least 1.5x on the dominant extraction cost.
    assert noreuse["speedup"] >= NOREUSE_MIN_SPEEDUP, \
        f"noreuse speedup {noreuse['speedup']:.2f} < {NOREUSE_MIN_SPEEDUP}"
    # Delex parallelizes too (weaker bound: its per-snapshot work is
    # mostly reuse bookkeeping, which is cheaper than extraction).
    assert data["systems"]["delex"]["speedup"] > 0.0
