"""Execution-runtime scaling (extension).

Page-level IE is embarrassingly parallel, so fanning page batches out
over workers should cut wall time close to linearly while — by the
runtime's determinism contract — changing nothing about the results.
This benchmark measures pages/sec for the serial backend vs a
4-worker run (auto backend: the heavy emulated blackboxes select the
process pool) for No-reuse and Delex on a synthetic DBLife corpus,
and emits a machine-readable ``BENCH_runtime.json`` at the repo root.

On machines with fewer than 4 CPUs there is no parallel speedup to
measure; the benchmark still runs and records the numbers, but each
verdict is ``degraded_ok`` instead of ``ok`` and the speedup floors
are not enforced (``cpu_count`` is part of the JSON so downstream
tooling can tell the two apart).
"""

import json
import os
import tempfile

from conftest import save_table

from repro.core.runner import (
    canonical_results,
    make_system,
    resolve_executor,
)
from repro.corpus import dblife_corpus
from repro.extractors import make_task

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_runtime.json")

TASK = "chair"           # DBLife task with the heaviest blackboxes
PAGES = int(os.environ.get("REPRO_BENCH_RUNTIME_PAGES", "24"))
N_SNAPSHOTS = 3
WORK_SCALE = float(os.environ.get("REPRO_BENCH_RUNTIME_WORK", "1.0"))
JOBS = 4

NOREUSE_MIN_SPEEDUP = 1.5


def _measure(task, snapshots, system_name, jobs, workdir):
    """Total seconds, pages/sec, and canonical results for one series."""
    executor = resolve_executor(task, jobs=jobs)
    system = make_system(system_name, task, workdir, executor=executor)
    seconds = 0.0
    pages = 0
    outputs = []
    prev = None
    for snapshot in snapshots:
        result = system.process(snapshot, prev)
        seconds += result.timings.total
        pages += result.pages
        outputs.append(canonical_results(result))
        prev = snapshot
    backend = executor.name if executor is not None else "serial"
    return {
        "backend": backend,
        "jobs": jobs,
        "seconds": seconds,
        "pages": pages,
        "pages_per_second": pages / seconds if seconds > 0 else 0.0,
    }, outputs


def run_runtime_scaling():
    task = make_task(TASK, work_scale=WORK_SCALE)
    snapshots = list(dblife_corpus(n_pages=PAGES, seed=71,
                                   p_unchanged=0.7).snapshots(N_SNAPSHOTS))
    data = {
        "task": TASK,
        "pages": PAGES,
        "snapshots": N_SNAPSHOTS,
        "work_scale": WORK_SCALE,
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "systems": {},
    }
    with tempfile.TemporaryDirectory() as tmp_root:
        for name in ("noreuse", "delex"):
            serial, serial_out = _measure(
                task, snapshots, name, 1,
                os.path.join(tmp_root, f"{name}_serial"))
            parallel, parallel_out = _measure(
                task, snapshots, name, JOBS,
                os.path.join(tmp_root, f"{name}_par"))
            assert serial_out == parallel_out, \
                f"{name}: parallel run changed the results"
            data["systems"][name] = {
                "serial": serial,
                "parallel": parallel,
                "speedup": (serial["seconds"] / parallel["seconds"]
                            if parallel["seconds"] > 0 else 0.0),
            }
    return data


def _render(data):
    lines = [f"Runtime scaling ('{data['task']}', {data['pages']} pages, "
             f"{data['snapshots']} snapshots, jobs={data['jobs']})",
             f"{'system':<9}{'serial p/s':>12}{'jobs4 p/s':>12}"
             f"{'speedup':>9}{'backend':>9}"]
    for name, row in data["systems"].items():
        lines.append(
            f"{name:<9}{row['serial']['pages_per_second']:>12.1f}"
            f"{row['parallel']['pages_per_second']:>12.1f}"
            f"{row['speedup']:>9.2f}{row['parallel']['backend']:>9}")
    return "\n".join(lines) + "\n"


def _verdicts(data):
    """Per-system speedup verdicts, honest about the hardware.

    ``ok``: the machine has at least ``jobs`` CPUs and the system met
    its speedup floor. ``degraded_ok``: fewer CPUs than workers, so a
    speedup cannot be expected — numbers are recorded, floors are not
    enforced. ``fail``: enough CPUs, floor missed.
    """
    cpus = data["cpu_count"] or 1
    verdicts = {}
    for name, row in data["systems"].items():
        if cpus < data["jobs"]:
            verdicts[name] = "degraded_ok"
            continue
        if name == "noreuse":
            passed = row["speedup"] >= NOREUSE_MIN_SPEEDUP
        else:
            passed = row["speedup"] > 0.0
        verdicts[name] = "ok" if passed else "fail"
    return verdicts


def test_runtime_scaling(benchmark):
    data = benchmark.pedantic(run_runtime_scaling, rounds=1, iterations=1)
    data["verdicts"] = _verdicts(data)
    with open(BENCH_JSON, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")
    save_table("runtime_scaling.txt", _render(data))

    assert "fail" not in data["verdicts"].values(), data["verdicts"]
    if (os.cpu_count() or 1) < JOBS:
        # Too few CPUs for a speedup to exist; the JSON records the
        # degraded verdicts and the floors below don't apply.
        assert set(data["verdicts"].values()) == {"degraded_ok"}
        return
    noreuse = data["systems"]["noreuse"]
    assert noreuse["parallel"]["backend"] == "process"
    # From-scratch extraction is embarrassingly parallel: 4 workers
    # must buy at least 1.5x on the dominant extraction cost.
    assert noreuse["speedup"] >= NOREUSE_MIN_SPEEDUP, \
        f"noreuse speedup {noreuse['speedup']:.2f} < {NOREUSE_MIN_SPEEDUP}"
    # Delex parallelizes too (weaker bound: its per-snapshot work is
    # mostly reuse bookkeeping, which is cheaper than extraction).
    assert data["systems"]["delex"]["speedup"] > 0.0
