"""Figure 15: the learning-based IE program (ME segmenter + 4 CRFs).

Paper-reported shape: on the fast-changing Wikipedia corpus, Shortcut
and Cyclex barely beat No-reuse (pages change, and the whole-program
α is huge because tight CRF bounds cannot be derived), while Delex —
reusing at the unit level, where the segmenter's (α, β) are tight and
a CRF's sentence either reappears verbatim or is re-decoded — cuts
Cyclex's runtime by 42–53 %.
"""

import pytest

from conftest import (
    corpus_snapshots,
    delex_vs,
    format_runtime_table,
    save_table,
)

from repro.core.runner import run_series, verify_agreement
from repro.extractors import make_task


def run_fig15():
    task = make_task("infobox")
    snaps = corpus_snapshots("infobox", "wikipedia", n_snapshots=5,
                             pages=30)
    reports = run_series(task, snaps)
    problems = verify_agreement(reports)
    assert not problems, problems[:3]
    return reports


def test_fig15_learning_program(benchmark):
    reports = benchmark.pedantic(run_fig15, rounds=1, iterations=1)
    table = format_runtime_table(
        "Figure 15 — learning-based infobox program (s)", reports)
    cut = delex_vs(reports, "cyclex", skip=2)
    table += f"Delex steady-state cut vs Cyclex: {cut:.0%}\n"
    save_table("fig15_learning.txt", table)

    noreuse = reports["noreuse"].total_seconds()
    shortcut = reports["shortcut"].total_seconds()
    cyclex = reports["cyclex"].total_seconds()

    # Shortcut and Cyclex only marginally better than No-reuse.
    assert shortcut > 0.5 * noreuse
    assert cyclex > 0.5 * noreuse
    # Delex wins big despite the conservative CRF (alpha, beta)
    # (paper: cuts Cyclex by 42-53 %).
    assert cut > 0.35
