"""Figure 14: impact of capturing IE results as mentions multiply.

The paper rewires each blackbox of "play" to emit every mention
multiple times, growing the captured IE results, and shows (a) Delex
keeps outperforming the baselines by large margins, and (b) the
capture/reuse overhead (copy + reuse-file I/O) grows much more slowly
than the mention count and stays a small share of total runtime.
"""

import pytest

from conftest import corpus_snapshots, save_table

from repro.core.runner import run_series, verify_agreement
from repro.extractors import make_task, multiply_task_mentions


def run_factor(factor):
    base = make_task("play", work_scale=0.5)
    task = multiply_task_mentions(base, factor) if factor > 1 else base
    snaps = corpus_snapshots("play", "wikipedia", n_snapshots=4, pages=24)
    reports = run_series(task, snaps, systems=("noreuse", "delex"),
                         keep_results=True)
    problems = verify_agreement(reports)
    assert not problems, problems[:3]
    delex = reports["delex"]
    overhead = 0.0
    mentions_captured = 0
    for snap_report in delex.snapshots[1:]:
        row = snap_report.timings.as_row()
        overhead += row["copy"] + row["io"]
    # Re-run one Delex snapshot transition to count captured tuples.
    from repro.core.delex import DelexSystem
    import tempfile
    with tempfile.TemporaryDirectory() as td:
        system = DelexSystem(task, td, sample_size=4)
        system.process(snaps[0])
        result = system.process(snaps[1], snaps[0])
        mentions_captured = sum(s.output_tuples
                                for s in result.unit_stats.values())
    return {
        "noreuse": reports["noreuse"].total_seconds(),
        "delex": delex.total_seconds(),
        "overhead": overhead,
        "captured": mentions_captured,
    }


def test_fig14_mention_scaling(benchmark):
    def sweep():
        return {k: run_factor(k) for k in (1, 2, 4)}

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Figure 14 — runtime vs number of captured mentions ('play')",
             f"{'factor':>7}{'captured':>10}{'noreuse':>9}{'delex':>9}"
             f"{'cap+reuse ovh':>15}"]
    for k, row in sorted(data.items()):
        lines.append(f"{k:>7}{row['captured']:>10}{row['noreuse']:>9.2f}"
                     f"{row['delex']:>9.2f}{row['overhead']:>15.3f}")
    save_table("fig14_mentions.txt", "\n".join(lines) + "\n")

    # Mentions really multiplied.
    mention_growth = data[4]["captured"] / data[1]["captured"]
    assert mention_growth > 3
    # Delex still wins by a large margin at 4x mentions.
    assert data[4]["delex"] < 0.6 * data[4]["noreuse"]
    # Capture/reuse overhead grows more slowly than the mention count
    # (paper: +88 % overhead for +400 % mentions)...
    overhead_growth = (data[4]["overhead"]
                       / max(1e-9, data[1]["overhead"]))
    assert overhead_growth < mention_growth
    # ...and stays a modest share of Delex's total runtime.
    assert data[4]["overhead"] < 0.5 * data[4]["delex"]
