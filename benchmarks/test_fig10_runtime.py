"""Figure 10: runtime of No-reuse / Shortcut / Cyclex / Delex.

One panel per IE task, each running all four systems over consecutive
snapshots of the task's corpus. Paper-reported shape:

* No-reuse is far slower than everything else on both corpora;
* Shortcut is close to No-reuse on the fast-changing Wikipedia-like
  corpus but far better on the DBLife-like one;
* Cyclex is comparable to or better than Shortcut;
* Delex matches Cyclex on the single-blackbox ``talk`` and beats it
  substantially (paper: 50–71 %) on every multi-blackbox task.
"""

import pytest

from conftest import delex_vs, format_runtime_table, save_table

from repro.extractors import RULE_TASKS

DBLIFE_TASKS = ("talk", "chair", "advise")
WIKI_TASKS = ("blockbuster", "play", "award")


@pytest.mark.parametrize("task_name", RULE_TASKS)
def test_fig10_panel(benchmark, fig10_cache, task_name):
    reports = benchmark.pedantic(fig10_cache.reports, args=(task_name,),
                                 rounds=1, iterations=1)
    table = format_runtime_table(
        f"Figure 10 — {task_name}: per-snapshot runtime (s)", reports)
    cut_cyclex = delex_vs(reports, "cyclex", skip=2)
    cut_noreuse = delex_vs(reports, "noreuse", skip=2)
    table += (f"Delex steady-state cut vs Cyclex: {cut_cyclex:.0%}   "
              f"vs No-reuse: {cut_noreuse:.0%}\n")
    save_table(f"fig10_{task_name}.txt", table)

    noreuse = reports["noreuse"].total_seconds()
    shortcut = reports["shortcut"].total_seconds()
    cyclex = reports["cyclex"].total_seconds()
    delex = reports["delex"].total_seconds()

    # Reuse always beats from-scratch; Shortcut is at worst within
    # noise of it (on the fast-changing corpus the two are nearly tied
    # — the paper's "only marginally better").
    assert delex < noreuse
    assert shortcut < 1.15 * noreuse
    if task_name == "talk":
        # Single blackbox: Delex ~ Cyclex (within noise).
        assert delex < cyclex * 1.3
    else:
        # Multi-blackbox: Delex clearly beats Cyclex in steady state
        # (paper: 50-71 % cut).
        assert cut_cyclex > 0.3
    if task_name in WIKI_TASKS:
        # Fast-changing corpus: Shortcut only marginally beats
        # No-reuse, while Delex wins big.
        assert shortcut > 0.5 * noreuse
        assert cut_noreuse > 0.4


def test_fig10_summary(benchmark, fig10_cache):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Figure 10 — summary (total seconds over reuse snapshots)",
             f"{'task':<13}{'noreuse':>9}{'shortcut':>9}{'cyclex':>9}"
             f"{'delex':>9}{'cut':>7}"]
    for task_name in RULE_TASKS:
        reports = fig10_cache.reports(task_name)
        lines.append(
            f"{task_name:<13}"
            f"{reports['noreuse'].total_seconds():>9.2f}"
            f"{reports['shortcut'].total_seconds():>9.2f}"
            f"{reports['cyclex'].total_seconds():>9.2f}"
            f"{reports['delex'].total_seconds():>9.2f}"
            f"{delex_vs(reports, 'cyclex', skip=2):>7.0%}")
    save_table("fig10_summary.txt", "\n".join(lines) + "\n")
