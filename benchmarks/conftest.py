"""Shared benchmark infrastructure.

Every benchmark file regenerates one table or figure of the paper's
evaluation (Section 8). Scales are laptop-sized; the *shape* of the
results (system ordering, relative factors, crossovers) is the target,
not the authors' absolute testbed numbers. Scale knobs:

* ``REPRO_BENCH_PAGES_DBLIFE`` (default 60)
* ``REPRO_BENCH_PAGES_WIKI`` (default 40)
* ``REPRO_BENCH_SNAPSHOTS`` (default 5)
* ``REPRO_BENCH_WORK_SCALE`` (default 1.0)
* ``REPRO_BENCH_JOBS`` (default 1) — execution-runtime workers; results
  are backend-independent, only the wall clock changes

Rendered result tables are written to ``benchmarks/results/*.txt`` so
they survive pytest's stdout capture; EXPERIMENTS.md records them.
"""

from __future__ import annotations

import os
from typing import Dict, Sequence

import pytest

from repro.corpus import dblife_corpus, wikipedia_corpus
from repro.core.runner import SeriesReport, run_series, verify_agreement
from repro.extractors import make_task

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

PAGES_DBLIFE = int(os.environ.get("REPRO_BENCH_PAGES_DBLIFE", "60"))
PAGES_WIKI = int(os.environ.get("REPRO_BENCH_PAGES_WIKI", "40"))
N_SNAPSHOTS = int(os.environ.get("REPRO_BENCH_SNAPSHOTS", "5"))
WORK_SCALE = float(os.environ.get("REPRO_BENCH_WORK_SCALE", "1.0"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

TASK_SEEDS = {"talk": 101, "chair": 102, "advise": 103,
              "blockbuster": 104, "play": 105, "award": 106,
              "infobox": 107}


def corpus_snapshots(task_name: str, corpus_kind: str,
                     n_snapshots: int = 0, pages: int = 0):
    """Deterministic snapshots for a task's corpus."""
    seed = TASK_SEEDS.get(task_name, 999)
    n = n_snapshots or N_SNAPSHOTS
    if corpus_kind == "dblife":
        corpus = dblife_corpus(n_pages=pages or PAGES_DBLIFE, seed=seed)
    else:
        corpus = wikipedia_corpus(n_pages=pages or PAGES_WIKI, seed=seed)
    return list(corpus.snapshots(n))


def save_table(name: str, text: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    print(text)
    return path


def format_runtime_table(title: str,
                         reports: Dict[str, SeriesReport]) -> str:
    lines = [title]
    systems = list(reports)
    header = "snapshot  " + "".join(f"{s:>10}" for s in systems)
    lines.append(header)
    n = len(next(iter(reports.values())).snapshots)
    for i in range(1, n):  # skip the bootstrap snapshot
        row = f"{i:>8}  " + "".join(
            f"{reports[s].snapshots[i].seconds:>10.3f}" for s in systems)
        lines.append(row)
    totals = "   total  " + "".join(
        f"{reports[s].total_seconds():>10.3f}" for s in systems)
    lines.append(totals)
    return "\n".join(lines) + "\n"


class Fig10Cache:
    """Runs each task's 4-system series once; Figures 10 and 11 share it."""

    def __init__(self) -> None:
        self._cache: Dict[str, Dict[str, SeriesReport]] = {}

    def reports(self, task_name: str) -> Dict[str, SeriesReport]:
        if task_name not in self._cache:
            task = make_task(task_name, work_scale=WORK_SCALE)
            snaps = corpus_snapshots(task_name, task.corpus)
            reports = run_series(task, snaps, jobs=BENCH_JOBS)
            problems = verify_agreement(reports)
            assert not problems, problems[:3]
            self._cache[task_name] = reports
        return self._cache[task_name]


@pytest.fixture(scope="session")
def fig10_cache() -> Fig10Cache:
    return Fig10Cache()


@pytest.fixture(scope="session")
def bench_jobs() -> int:
    """Execution-runtime worker count (``REPRO_BENCH_JOBS``)."""
    return BENCH_JOBS


def delex_vs(reports: Dict[str, SeriesReport], other: str,
             skip: int = 1) -> float:
    """Fractional runtime cut of Delex relative to another system.

    ``skip`` drops leading snapshots: 1 skips only the bootstrap, 2
    also skips Delex's first reuse snapshot (where one-time calibration
    probes run). The paper averages over 14 reuse snapshots, so the
    steady state is the comparable quantity.
    """
    delex = sum(r.seconds for r in reports["delex"].snapshots[skip:])
    base = sum(r.seconds for r in reports[other].snapshots[skip:])
    if base == 0:
        return 0.0
    return 1.0 - delex / base
