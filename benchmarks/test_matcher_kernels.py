"""Matcher-kernel microbenchmark (extension).

Isolates the two raw-speed layers the snapshot-delta fast paths stand
on, away from the engine and its caches:

* **Interned-token kernels** — each matcher is timed on the same
  region pairs with its vectorized kernel forced on and forced off
  (ST: k-gram anchor kernel vs. suffix-automaton probe; UD:
  interned-line Myers + vectorized run detection vs. str-comparing
  Myers; WS: vectorized winnowing vs. the reference loop). The two
  paths are parity-pinned, so the benchmark asserts byte-identical
  segments on every pair before it trusts the clocks.

* **Cross-snapshot match cache** — a Delex series is run fast-paths-on
  at several churn levels and the combined content-keyed hit rate
  (memo + cross-snapshot cache + equal-region short circuit) is
  recorded per level: the curve should rise toward low churn, where
  the cache carries almost all match work.

Emits ``BENCH_matchcore.json`` at the repo root (consumed by the CI
smoke job next to ``BENCH_fastpath.json``). Kernel speedup floors are
asserted only when numpy is importable; parity is asserted always —
without numpy both "paths" are the pure-Python fallback and must agree
trivially.

Intentionally free of the pytest-benchmark fixture so it runs under a
plain ``pytest``/``hypothesis`` install (the CI smoke job).
"""

import gc
import json
import os
import time

from conftest import save_table

from repro.core.runner import make_system
from repro.corpus import dblife_corpus
from repro.extractors import make_task
from repro.matchers.base import ST_NAME, UD_NAME
from repro.matchers.st import STMatcher
from repro.matchers.ud import UDMatcher
from repro.matchers.ws import WS_NAME, WinnowingMatcher
from repro.plan import compile_program, find_units
from repro.reuse.engine import PlanAssignment
from repro.text import tokens as _tokens
from repro.text.span import Interval

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_matchcore.json")

PAIRS = int(os.environ.get("REPRO_BENCH_KERNEL_PAIRS", "24"))
REPS = int(os.environ.get("REPRO_BENCH_KERNEL_REPS", "5"))
#: Churn levels for the cache hit-rate curve (fraction of pages left
#: unchanged between snapshots), low churn last.
CHURN_LEVELS = (0.5, 0.7, 0.9, 0.95)
CURVE_PAGES = int(os.environ.get("REPRO_BENCH_KERNEL_PAGES", "24"))
CURVE_SNAPSHOTS = int(os.environ.get("REPRO_BENCH_KERNEL_SNAPSHOTS", "5"))
#: Kernel-on vs kernel-off wall-time floors, asserted when numpy is
#: present. Deliberately below typical measurements (see
#: ``BENCH_matchcore.json``) to absorb scheduler noise.
MIN_KERNEL_SPEEDUP = {ST_NAME: 2.0, UD_NAME: 1.3, WS_NAME: 1.5}


def _page_pairs():
    """(q_text, p_text) pairs: each URL's body in two consecutive
    snapshots of an everything-churns corpus, so the matchers face
    genuinely evolved text rather than identical regions."""
    corpus = dblife_corpus(n_pages=PAIRS, seed=7, p_unchanged=0.0)
    old, new = corpus.snapshots(2)
    q_by_url = {page.url: page.text for page in old.pages}
    return [(q_by_url[page.url], page.text) for page in new.pages
            if page.url in q_by_url]


def _doc_pairs(pairs):
    """Two large line-diff workloads from the page pairs: the aligned
    concatenation (small edit distance — UD's common case, where the
    kernel must at least break even) and a half-rotated one (moved
    blocks, edit distance ~ the whole document — where the vectorized
    Myers band sweep is the win)."""
    q_doc = "\n".join(q for q, _ in pairs)
    p_bodies = [p for _, p in pairs]
    p_aligned = "\n".join(p_bodies)
    half = len(p_bodies) // 2
    p_rotated = "\n".join(p_bodies[half:] + p_bodies[:half])
    return [(q_doc, p_aligned), (q_doc, p_rotated)]


def _run_matcher(matcher, pairs):
    """Segments per pair plus the best-of-``REPS`` total seconds."""
    outputs = []
    for q_text, p_text in pairs:
        outputs.append(matcher.match(
            p_text, Interval(0, len(p_text)),
            q_text, Interval(0, len(q_text))))
    best = None
    gc.collect()
    gc.disable()
    try:
        for _ in range(REPS):
            start = time.perf_counter()
            for q_text, p_text in pairs:
                matcher.match(p_text, Interval(0, len(p_text)),
                              q_text, Interval(0, len(q_text)))
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
    finally:
        gc.enable()
    return outputs, best


def _kernel_rows():
    """Per-matcher kernel-off vs kernel-on timings at pinned parity."""
    pairs = _page_pairs()
    doc_pairs = _doc_pairs(pairs)
    configs = [
        (ST_NAME, pairs,
         STMatcher(min_length=12, kernel="off"),
         STMatcher(min_length=12, tokens=_tokens.TokenCache(),
                   kernel="force")),
        (UD_NAME, doc_pairs,
         UDMatcher(kernel="off"), UDMatcher(kernel="force")),
        (WS_NAME, pairs,
         WinnowingMatcher(kernel="off"), WinnowingMatcher(kernel="force")),
    ]
    rows = {}
    for name, workload, slow, fast in configs:
        slow_out, slow_s = _run_matcher(slow, workload)
        fast_out, fast_s = _run_matcher(fast, workload)
        assert fast_out == slow_out, f"{name}: kernel changed the segments"
        rows[name] = {
            "calls": len(workload),
            "seconds_off": slow_s,
            "seconds_on": fast_s,
            "speedup": slow_s / fast_s if fast_s > 0 else float("inf"),
        }
    return rows


def _hit_curve(tmp_root):
    """Combined content-keyed hit rate of a fast-paths-on ST series,
    one point per churn level."""
    task = make_task("chair", work_scale=0.2)
    plan = compile_program(task.program, task.registry)
    assignment = PlanAssignment.uniform(find_units(plan), ST_NAME)
    curve = []
    for p_unchanged in CHURN_LEVELS:
        snapshots = list(dblife_corpus(
            n_pages=CURVE_PAGES, seed=83,
            p_unchanged=p_unchanged).snapshots(CURVE_SNAPSHOTS))
        system = make_system(
            "delex", task, os.path.join(tmp_root, f"churn{p_unchanged}"),
            fastpath="on", fixed_assignment=assignment)
        hits = 0
        lookups = 0
        match_seconds = 0.0
        prev = None
        for i, snapshot in enumerate(snapshots):
            result = system.process(snapshot, prev)
            if i > 0 and result.timings.fastpath is not None:
                fp = result.timings.fastpath.as_dict()
                match_seconds += result.timings.get("match")
                got = (fp.get("memo_hits", 0) + fp.get("cache_hits", 0)
                       + fp.get("region_short_circuits", 0))
                hits += got
                lookups += got + fp.get("memo_misses", 0)
            prev = snapshot
        curve.append({
            "p_unchanged": p_unchanged,
            "combined_hit_rate": hits / lookups if lookups else 0.0,
            "match_seconds": match_seconds,
        })
    return curve


def run_matcher_kernels(tmp_root):
    return {
        "pairs": PAIRS,
        "reps": REPS,
        "numpy": _tokens.numpy_enabled(),
        "min_kernel_speedup": dict(MIN_KERNEL_SPEEDUP),
        "kernels": _kernel_rows(),
        "hit_curve": _hit_curve(tmp_root),
        "curve_pages": CURVE_PAGES,
        "curve_snapshots": CURVE_SNAPSHOTS,
        "cpu_count": os.cpu_count(),
    }


def _render(data):
    lines = [f"Matcher kernels ({data['pairs']} page pairs, best of "
             f"{data['reps']}, numpy={'yes' if data['numpy'] else 'no'})",
             f"{'matcher':<9}{'kernel off':>12}{'kernel on':>12}"
             f"{'speedup':>9}"]
    for name, row in data["kernels"].items():
        lines.append(f"{name:<9}{row['seconds_off'] * 1e3:>10.2f}ms"
                     f"{row['seconds_on'] * 1e3:>10.2f}ms"
                     f"{row['speedup']:>8.1f}x")
    lines.append("")
    lines.append(f"Content-keyed hit rate vs churn ('chair', "
                 f"{data['curve_pages']} pages, "
                 f"{data['curve_snapshots']} snapshots)")
    lines.append(f"{'p_unchanged':>12}{'hit rate':>10}{'match s':>9}")
    for point in data["hit_curve"]:
        lines.append(f"{point['p_unchanged']:>12.2f}"
                     f"{point['combined_hit_rate']:>10.2f}"
                     f"{point['match_seconds']:>9.3f}")
    return "\n".join(lines) + "\n"


def test_matcher_kernels(tmp_path):
    data = run_matcher_kernels(str(tmp_path))
    with open(BENCH_JSON, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")
    save_table("matcher_kernels.txt", _render(data))

    if data["numpy"]:
        for name, floor in MIN_KERNEL_SPEEDUP.items():
            row = data["kernels"][name]
            assert row["speedup"] >= floor, \
                f"{name} kernel speedup {row['speedup']:.2f} < {floor}"
    curve = data["hit_curve"]
    # The cache layers must carry more of the work as churn falls;
    # at DBLife-like churn they must clear the headline floor.
    assert curve[-1]["combined_hit_rate"] >= curve[0]["combined_hit_rate"]
    assert curve[-1]["combined_hit_rate"] >= 0.30, curve[-1]
