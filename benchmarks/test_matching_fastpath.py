"""Snapshot-delta fast-path benchmark (extension).

Low-churn corpora are the fast paths' home turf: with ~95% of pages
unchanged between snapshots, fingerprint short circuits skip the
matcher on most page pairs and the content-keyed match memo, the
cross-snapshot match cache, and the automaton cache absorb most of
the rest. This benchmark runs Delex with a pinned matcher assignment
over a low-churn DBLife series twice — fast paths on and off — and
compares the *matcher* wall time (the ``match`` category of the
Figure 11 decomposition) plus the fast-path hit counters. Each series
is repeated ``REPS`` times with GC paused and the minimum match time
kept, the standard defence against scheduler noise at millisecond
scale. It emits a machine-readable ``BENCH_fastpath.json`` at the
repo root and asserts the headline claims: per-matcher match-time
speedup floors (``MIN_MATCH_SPEEDUP``) and a combined hit rate of the
content-keyed layers (memo + cross-snapshot cache + equal-region
short circuit) of at least ``MIN_COMBINED_HIT_RATE`` — at identical
results.

Intentionally free of the pytest-benchmark fixture so it runs under a
plain ``pytest``/``hypothesis`` install (the CI smoke job).
"""

import gc
import json
import os

from conftest import save_table

from repro.core.runner import canonical_results, make_system
from repro.corpus import dblife_corpus
from repro.extractors import make_task
from repro.matchers.base import ST_NAME, UD_NAME
from repro.plan import compile_program, find_units
from repro.reuse.engine import PlanAssignment

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_fastpath.json")

TASK = "chair"
PAGES = int(os.environ.get("REPRO_BENCH_FASTPATH_PAGES", "40"))
N_SNAPSHOTS = int(os.environ.get("REPRO_BENCH_FASTPATH_SNAPSHOTS", "8"))
P_UNCHANGED = 0.95       # low churn: ~95% of pages identical (DBLife-like)
WORK_SCALE = float(os.environ.get("REPRO_BENCH_FASTPATH_WORK", "0.2"))
REPS = int(os.environ.get("REPRO_BENCH_FASTPATH_REPS", "3"))
#: On-vs-off matcher wall-time floor per matcher. ST rides the
#: k-gram kernel plus all three cache layers; UD's pure-Python diff
#: is already near-linear on low-churn pages, so its floor is lower.
MIN_MATCH_SPEEDUP = {ST_NAME: 10.0, UD_NAME: 4.0}
#: Content-keyed layers (memo + cross-snapshot cache + equal-region
#: short circuit) must absorb at least this share of match_many work.
MIN_COMBINED_HIT_RATE = 0.30


def _run(task, snapshots, assignment, fastpath, workdir):
    """One Delex series; returns matcher seconds, counters, results."""
    system = make_system("delex", task, workdir, fastpath=fastpath,
                         fixed_assignment=assignment)
    match_seconds = 0.0
    total_seconds = 0.0
    outputs = []
    fp_rows = []
    prev = None
    gc.collect()
    gc.disable()
    try:
        for i, snapshot in enumerate(snapshots):
            result = system.process(snapshot, prev)
            if i > 0:  # skip the bootstrap: no matching happens there
                match_seconds += result.timings.get("match")
                total_seconds += result.timings.total
                if result.timings.fastpath is not None:
                    fp_rows.append(result.timings.fastpath.as_dict())
            outputs.append(canonical_results(result))
            prev = snapshot
    finally:
        gc.enable()
    counters = {}
    for row in fp_rows:
        for key, value in row.items():
            if key.endswith("_rate") or key.endswith("_fraction"):
                continue
            counters[key] = counters.get(key, 0) + value
    paired = counters.get("pages_paired", 0)
    memo_calls = (counters.get("memo_hits", 0)
                  + counters.get("memo_misses", 0))
    counters["unchanged_fraction"] = (
        counters.get("pages_short_circuited", 0) / paired if paired else 0.0)
    counters["memo_hit_rate"] = (
        counters.get("memo_hits", 0) / memo_calls if memo_calls else 0.0)
    hits = (counters.get("memo_hits", 0) + counters.get("cache_hits", 0)
            + counters.get("region_short_circuits", 0))
    lookups = hits + counters.get("memo_misses", 0)
    counters["combined_hit_rate"] = hits / lookups if lookups else 0.0
    return {
        "match_seconds": match_seconds,
        "total_seconds": total_seconds,
        "fastpath": counters,
    }, outputs


def _run_best(task, snapshots, assignment, fastpath, workdir):
    """Min-of-``REPS`` series: keeps the repetition with the least
    matcher wall time (counters and outputs are deterministic across
    repetitions, only the clock is noisy)."""
    best = None
    best_out = None
    for rep in range(REPS):
        res, outputs = _run(task, snapshots, assignment, fastpath,
                            os.path.join(workdir, f"rep{rep}"))
        if best is None or res["match_seconds"] < best["match_seconds"]:
            best = res
            best_out = outputs
    return best, best_out


def run_matching_fastpath(tmp_root):
    task = make_task(TASK, work_scale=WORK_SCALE)
    snapshots = list(dblife_corpus(
        n_pages=PAGES, seed=81,
        p_unchanged=P_UNCHANGED).snapshots(N_SNAPSHOTS))
    plan = compile_program(task.program, task.registry)
    units = find_units(plan)
    data = {
        "task": TASK,
        "pages": PAGES,
        "snapshots": N_SNAPSHOTS,
        "p_unchanged": P_UNCHANGED,
        "work_scale": WORK_SCALE,
        "reps": REPS,
        "min_match_speedup": dict(MIN_MATCH_SPEEDUP),
        "min_combined_hit_rate": MIN_COMBINED_HIT_RATE,
        "cpu_count": os.cpu_count(),
        "matchers": {},
    }
    for matcher in (ST_NAME, UD_NAME):
        assignment = PlanAssignment.uniform(units, matcher)
        slow, slow_out = _run_best(
            task, snapshots, assignment, "off",
            os.path.join(tmp_root, f"{matcher}_off"))
        fast, fast_out = _run_best(
            task, snapshots, assignment, "on",
            os.path.join(tmp_root, f"{matcher}_on"))
        assert fast_out == slow_out, \
            f"{matcher}: fast paths changed the results"
        on_match = fast["match_seconds"]
        off_match = slow["match_seconds"]
        data["matchers"][matcher] = {
            "match_seconds_off": off_match,
            "match_seconds_on": on_match,
            "match_speedup": (off_match / on_match if on_match > 0
                              else float("inf")),
            "total_seconds_off": slow["total_seconds"],
            "total_seconds_on": fast["total_seconds"],
            "fastpath": fast["fastpath"],
        }
    return data


def _render(data):
    lines = [f"Matching fast paths ('{data['task']}', {data['pages']} "
             f"pages, {data['snapshots']} snapshots, "
             f"p_unchanged={data['p_unchanged']}, "
             f"best of {data['reps']})",
             f"{'matcher':<9}{'match off':>11}{'match on':>11}"
             f"{'speedup':>9}{'unchanged':>11}{'hit rate':>10}"]
    for name, row in data["matchers"].items():
        fp = row["fastpath"]
        speedup = row["match_speedup"]
        speedup_txt = ("inf" if speedup == float("inf")
                       else f"{speedup:.1f}x")
        lines.append(
            f"{name:<9}{row['match_seconds_off']:>10.3f}s"
            f"{row['match_seconds_on']:>10.3f}s{speedup_txt:>9}"
            f"{fp['unchanged_fraction']:>11.2f}"
            f"{fp['combined_hit_rate']:>10.2f}")
    return "\n".join(lines) + "\n"


def test_matching_fastpath(tmp_path):
    data = run_matching_fastpath(str(tmp_path))
    with open(BENCH_JSON, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")
    save_table("matching_fastpath.txt", _render(data))

    for name, floor in MIN_MATCH_SPEEDUP.items():
        row = data["matchers"][name]
        fp = row["fastpath"]
        # The corpus really is low-churn and the identity path fired.
        assert fp["unchanged_fraction"] >= 0.5, fp
        assert fp["pages_short_circuited"] > 0
        # Headline: matcher wall time cut by the per-matcher floor.
        assert row["match_speedup"] >= floor, \
            (f"{name} match speedup {row['match_speedup']:.2f} < {floor}")
        # The content-keyed layers, not just the identity short
        # circuit, carry the speedup.
        assert fp["combined_hit_rate"] >= MIN_COMBINED_HIT_RATE, \
            (f"{name} combined hit rate {fp['combined_hit_rate']:.2f} "
             f"< {MIN_COMBINED_HIT_RATE}")
