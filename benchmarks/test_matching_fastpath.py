"""Snapshot-delta fast-path benchmark (extension).

Low-churn corpora are the fast paths' home turf: with >= 60% of pages
unchanged between snapshots, fingerprint short circuits skip the
matcher on most page pairs and the match memo / automaton cache absorb
most of the rest. This benchmark runs Delex with a pinned matcher
assignment over a low-churn DBLife series twice — fast paths on and
off — and compares the *matcher* wall time (the ``match`` category of
the Figure 11 decomposition) plus the fast-path hit counters. It
emits a machine-readable ``BENCH_fastpath.json`` at the repo root and
asserts the headline claim: at least ``MIN_MATCH_SPEEDUP``x less
matcher time with the fast paths on, at identical results.

Intentionally free of the pytest-benchmark fixture so it runs under a
plain ``pytest``/``hypothesis`` install (the CI smoke job).
"""

import json
import os

from conftest import save_table

from repro.core.runner import canonical_results, make_system
from repro.corpus import dblife_corpus
from repro.extractors import make_task
from repro.matchers.base import ST_NAME, UD_NAME
from repro.plan import compile_program, find_units
from repro.reuse.engine import PlanAssignment

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_fastpath.json")

TASK = "chair"
PAGES = int(os.environ.get("REPRO_BENCH_FASTPATH_PAGES", "40"))
N_SNAPSHOTS = int(os.environ.get("REPRO_BENCH_FASTPATH_SNAPSHOTS", "4"))
P_UNCHANGED = 0.7        # low churn: >= 60% of pages identical
WORK_SCALE = float(os.environ.get("REPRO_BENCH_FASTPATH_WORK", "0.2"))
MIN_MATCH_SPEEDUP = 2.0  # on-vs-off matcher wall-time factor (ST)


def _run(task, snapshots, assignment, fastpath, workdir):
    """One Delex series; returns matcher seconds, counters, results."""
    system = make_system("delex", task, workdir, fastpath=fastpath,
                         fixed_assignment=assignment)
    match_seconds = 0.0
    total_seconds = 0.0
    outputs = []
    fp_rows = []
    prev = None
    for i, snapshot in enumerate(snapshots):
        result = system.process(snapshot, prev)
        if i > 0:  # skip the bootstrap: no matching happens there
            match_seconds += result.timings.get("match")
            total_seconds += result.timings.total
            if result.timings.fastpath is not None:
                fp_rows.append(result.timings.fastpath.as_dict())
        outputs.append(canonical_results(result))
        prev = snapshot
    counters = {}
    for row in fp_rows:
        for key, value in row.items():
            if key.endswith("_rate") or key.endswith("_fraction"):
                continue
            counters[key] = counters.get(key, 0) + value
    paired = counters.get("pages_paired", 0)
    memo_calls = (counters.get("memo_hits", 0)
                  + counters.get("memo_misses", 0))
    counters["unchanged_fraction"] = (
        counters.get("pages_short_circuited", 0) / paired if paired else 0.0)
    counters["memo_hit_rate"] = (
        counters.get("memo_hits", 0) / memo_calls if memo_calls else 0.0)
    return {
        "match_seconds": match_seconds,
        "total_seconds": total_seconds,
        "fastpath": counters,
    }, outputs


def run_matching_fastpath(tmp_root):
    task = make_task(TASK, work_scale=WORK_SCALE)
    snapshots = list(dblife_corpus(
        n_pages=PAGES, seed=81,
        p_unchanged=P_UNCHANGED).snapshots(N_SNAPSHOTS))
    plan = compile_program(task.program, task.registry)
    units = find_units(plan)
    data = {
        "task": TASK,
        "pages": PAGES,
        "snapshots": N_SNAPSHOTS,
        "p_unchanged": P_UNCHANGED,
        "work_scale": WORK_SCALE,
        "min_match_speedup": MIN_MATCH_SPEEDUP,
        "cpu_count": os.cpu_count(),
        "matchers": {},
    }
    for matcher in (ST_NAME, UD_NAME):
        assignment = PlanAssignment.uniform(units, matcher)
        slow, slow_out = _run(
            task, snapshots, assignment, "off",
            os.path.join(tmp_root, f"{matcher}_off"))
        fast, fast_out = _run(
            task, snapshots, assignment, "on",
            os.path.join(tmp_root, f"{matcher}_on"))
        assert fast_out == slow_out, \
            f"{matcher}: fast paths changed the results"
        on_match = fast["match_seconds"]
        off_match = slow["match_seconds"]
        data["matchers"][matcher] = {
            "match_seconds_off": off_match,
            "match_seconds_on": on_match,
            "match_speedup": (off_match / on_match if on_match > 0
                              else float("inf")),
            "total_seconds_off": slow["total_seconds"],
            "total_seconds_on": fast["total_seconds"],
            "fastpath": fast["fastpath"],
        }
    return data


def _render(data):
    lines = [f"Matching fast paths ('{data['task']}', {data['pages']} "
             f"pages, {data['snapshots']} snapshots, "
             f"p_unchanged={data['p_unchanged']})",
             f"{'matcher':<9}{'match off':>11}{'match on':>11}"
             f"{'speedup':>9}{'unchanged':>11}{'memo hit':>10}"]
    for name, row in data["matchers"].items():
        fp = row["fastpath"]
        speedup = row["match_speedup"]
        speedup_txt = ("inf" if speedup == float("inf")
                       else f"{speedup:.1f}x")
        lines.append(
            f"{name:<9}{row['match_seconds_off']:>10.3f}s"
            f"{row['match_seconds_on']:>10.3f}s{speedup_txt:>9}"
            f"{fp['unchanged_fraction']:>11.2f}"
            f"{fp['memo_hit_rate']:>10.2f}")
    return "\n".join(lines) + "\n"


def test_matching_fastpath(tmp_path):
    data = run_matching_fastpath(str(tmp_path))
    with open(BENCH_JSON, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")
    save_table("matching_fastpath.txt", _render(data))

    st = data["matchers"][ST_NAME]
    fp = st["fastpath"]
    # The corpus really is low-churn and the identity path fired on it.
    assert fp["unchanged_fraction"] >= 0.5, fp
    assert fp["pages_short_circuited"] > 0
    # Headline: the fast paths cut matcher wall time by >= 2x.
    assert st["match_speedup"] >= MIN_MATCH_SPEEDUP, \
        (f"ST match speedup {st['match_speedup']:.2f} < "
         f"{MIN_MATCH_SPEEDUP}")
    # UD benefits too (memo + identity path); weaker floor because its
    # per-call cost is already linear on low-churn diffs.
    assert data["matchers"][UD_NAME]["match_speedup"] > 1.0
