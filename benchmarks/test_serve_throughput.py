"""Serving-layer throughput (extension).

The serving layer's promise is that queries stay fast and *consistent
while snapshots are being applied*: readers take one generation
reference and never block on the writer. This benchmark hammers a
materialized view with concurrent reader threads while the ingest
loop applies a snapshot stream, and records

* queries/sec sustained during the ingest window,
* per-snapshot apply time and ingest lag (enqueue -> applied),
* a consistency audit: every response observed by any reader matched
  the batch NoReuse reference *for its own snapshot index* (i.e. no
  response ever mixed generations).

Emits machine-readable ``BENCH_serve.json`` at the repo root (the
``serve-smoke`` CI job uploads it). Scale knobs:

* ``REPRO_BENCH_SERVE_PAGES``     (default 16)
* ``REPRO_BENCH_SERVE_SNAPSHOTS`` (default 4)
* ``REPRO_BENCH_SERVE_WORK``      (default 1.0)
* ``REPRO_BENCH_SERVE_READERS``   (default 4)
"""

import json
import os
import tempfile
import threading
import time

from conftest import save_table

from repro.core.runner import canonical_results, make_system
from repro.corpus import dblife_corpus
from repro.extractors import make_task
from repro.serve import IngestLoop, IngestQueue, ViewConfig, ViewRegistry

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_serve.json")

TASK = "talk"            # DBLife task
PAGES = int(os.environ.get("REPRO_BENCH_SERVE_PAGES", "16"))
N_SNAPSHOTS = int(os.environ.get("REPRO_BENCH_SERVE_SNAPSHOTS", "4"))
WORK_SCALE = float(os.environ.get("REPRO_BENCH_SERVE_WORK", "1.0"))
READERS = int(os.environ.get("REPRO_BENCH_SERVE_READERS", "4"))
SEED = 201


def test_query_throughput_during_ingest():
    snapshots = list(dblife_corpus(n_pages=PAGES, seed=SEED,
                                   p_unchanged=0.6)
                     .snapshots(N_SNAPSHOTS))

    with tempfile.TemporaryDirectory() as workdir:
        registry = ViewRegistry(os.path.join(workdir, "views"))
        view = registry.register(ViewConfig(
            name=TASK, task=TASK, work_scale=WORK_SCALE))
        ingest_queue = IngestQueue(maxsize=max(4, N_SNAPSHOTS))
        loop = IngestLoop(registry, ingest_queue)
        relations = list(view.store.schema)

        # Bootstrap generation 1 inline so readers have data from t=0.
        assert loop.apply_one(snapshots[0])

        stop = threading.Event()
        counts = [0] * READERS
        observed = [set() for _ in range(READERS)]   # (index, rel, rows)
        errors = []

        def reader(slot: int) -> None:
            i = 0
            while not stop.is_set():
                rel = relations[i % len(relations)]
                i += 1
                try:
                    result = view.query(rel, limit=1_000_000)
                except Exception as exc:  # noqa: BLE001
                    errors.append(repr(exc))
                    stop.set()
                    return
                if result.total != len(result.tuples):
                    errors.append("truncated full read")
                    stop.set()
                    return
                observed[slot].add((result.snapshot_index, rel,
                                    frozenset(result.tuples)))
                counts[slot] += 1

        threads = [threading.Thread(target=reader, args=(slot,))
                   for slot in range(READERS)]
        for t in threads:
            t.start()

        loop.start()
        ingest_started = time.perf_counter()
        queries_before = sum(counts)
        for snapshot in snapshots[1:]:
            assert ingest_queue.push(snapshot, block=True, timeout=10)
        assert loop.drain(timeout=600)
        ingest_window = time.perf_counter() - ingest_started
        queries_during = sum(counts) - queries_before
        stop.set()
        for t in threads:
            t.join(timeout=10)
        loop.stop()

        assert not errors, errors[0]
        assert loop.snapshots_applied == N_SNAPSHOTS
        assert loop.snapshots_quarantined == 0

        # Consistency audit: every response any reader observed equals
        # the batch NoReuse reference for its own snapshot index.
        task = make_task(TASK, work_scale=WORK_SCALE)
        reference = {}
        with tempfile.TemporaryDirectory() as refdir:
            system = make_system("noreuse", task, refdir)
            for snapshot in snapshots:
                reference[snapshot.index] = canonical_results(
                    system.process(snapshot))
        audited = 0
        for slot_observed in observed:
            for index, rel, rows in slot_observed:
                assert rows == reference[index][rel], (
                    f"snapshot {index} relation {rel}: served response "
                    "diverged from the batch reference")
                audited += 1
        assert view.generation.canonical() == \
            reference[snapshots[-1].index]

        per_snapshot = [
            {
                "snapshot_index": record.snapshot_index,
                "apply_seconds": record.seconds,
                "engine_seconds": record.engine_seconds,
                "lag_seconds": record.lag_seconds,
                "pages_changed": record.pages_changed,
                "pages_unchanged": record.pages_unchanged,
                "tuples_total": record.tuples_total,
            }
            for record in view.history
        ]

    qps = queries_during / ingest_window if ingest_window else 0.0
    lags = [r["lag_seconds"] for r in per_snapshot
            if r["lag_seconds"] is not None]
    assert queries_during > 0, "readers starved during ingest"
    assert qps > 0
    assert lags and all(lag >= 0 for lag in lags), \
        "ingest lag not recorded"

    data = {
        "task": TASK,
        "pages": PAGES,
        "snapshots": N_SNAPSHOTS,
        "work_scale": WORK_SCALE,
        "readers": READERS,
        "ingest_window_seconds": ingest_window,
        "queries_during_ingest": queries_during,
        "qps_during_ingest": qps,
        "responses_audited": audited,
        "max_lag_seconds": max(lags),
        "mean_lag_seconds": sum(lags) / len(lags),
        "per_snapshot": per_snapshot,
        "verdict": "ok",
    }
    with open(BENCH_JSON, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")

    lines = [
        f"Serve throughput — task={TASK} pages={PAGES} "
        f"snapshots={N_SNAPSHOTS} readers={READERS} "
        f"work_scale={WORK_SCALE}",
        f"  qps during ingest : {qps:>10.1f}  "
        f"({queries_during} queries / {ingest_window:.3f}s)",
        f"  responses audited : {audited:>10d}  (all matched batch "
        "NoReuse for their generation)",
        "  snapshot   apply(s)     lag(s)   changed  unchanged   tuples",
    ]
    for r in per_snapshot:
        lag = (f"{r['lag_seconds']:>10.3f}"
               if r["lag_seconds"] is not None else "    inline")
        lines.append(
            f"  {r['snapshot_index']:>8}  {r['apply_seconds']:>9.3f} "
            f"{lag}  {r['pages_changed']:>8}  "
            f"{r['pages_unchanged']:>9}  {r['tuples_total']:>7}")
    save_table("serve_throughput.txt", "\n".join(lines) + "\n")
