"""Serving-layer throughput (extension).

The serving layer's promise is that queries stay fast and *consistent
while snapshots are being applied*: readers take one generation
reference and never block on the writer. Two campaigns:

* **single loop** — hammer one materialized view with concurrent
  reader threads while the ingest loop applies a snapshot stream;
  record qps, per-snapshot apply time and ingest lag, and audit every
  observed response against the batch NoReuse reference.
* **shard scaling** — the same churn series through the sharded tier
  at shards ∈ {1, 2, 4} (1 = the classic single-loop path), same
  reader load; record per-arm qps and max/mean ingest lag
  (enqueue → consistent-vector publish), audit every observed
  response byte-identically (content *and* pagination order) against
  the batch reference, and assert the structural claim: max lag at 4
  shards strictly below the 1-shard baseline. The win is
  architectural, not parallelism (one CPU, one GIL): shard stores run
  lazy, so the relation-index dedupe+sort leaves the apply path and
  amortizes on the read side, per vector. A saturation run pins the
  front door's behavior past capacity: admission rejects (429-shaped
  backpressure), lag stays bounded, consistency holds.

Emits machine-readable ``BENCH_serve.json`` at the repo root (the
``serve-smoke`` CI job uploads it). Scale knobs:

* ``REPRO_BENCH_SERVE_PAGES``     (default 16)
* ``REPRO_BENCH_SERVE_SNAPSHOTS`` (default 4)
* ``REPRO_BENCH_SERVE_WORK``      (default 1.0)
* ``REPRO_BENCH_SERVE_READERS``   (default 4)
* ``REPRO_BENCH_SHARD_PAGES``     (default 512)
* ``REPRO_BENCH_SHARD_SNAPSHOTS`` (default 6)
* ``REPRO_BENCH_SHARD_UNCHANGED`` (default 0.9)
* ``REPRO_BENCH_SHARD_READERS``   (default 4)
"""

import json
import os
import tempfile
import threading
import time

from conftest import save_table

from repro.core.runner import canonical_results, make_system
from repro.corpus import dblife_corpus
from repro.extractors import make_task
from repro.serve import (
    IngestLoop,
    IngestQueue,
    ViewConfig,
    ViewRegistry,
    lag_series,
)
from repro.serve.store import _sort_key
from repro.shard import ShardedDeployment

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_serve.json")

TASK = "talk"            # DBLife task
PAGES = int(os.environ.get("REPRO_BENCH_SERVE_PAGES", "16"))
N_SNAPSHOTS = int(os.environ.get("REPRO_BENCH_SERVE_SNAPSHOTS", "4"))
WORK_SCALE = float(os.environ.get("REPRO_BENCH_SERVE_WORK", "1.0"))
READERS = int(os.environ.get("REPRO_BENCH_SERVE_READERS", "4"))
SEED = 201

# Shard-scaling arm: the paper's low-churn serving regime — enough
# pages that index maintenance (not extraction) dominates the apply,
# which is exactly the work the sharded tier moves off the writer.
SHARD_PAGES = int(os.environ.get("REPRO_BENCH_SHARD_PAGES", "512"))
SHARD_SNAPSHOTS = int(
    os.environ.get("REPRO_BENCH_SHARD_SNAPSHOTS", "6"))
SHARD_UNCHANGED = float(
    os.environ.get("REPRO_BENCH_SHARD_UNCHANGED", "0.9"))
SHARD_READERS = int(os.environ.get("REPRO_BENCH_SHARD_READERS", "4"))
SHARD_COUNTS = (1, 2, 4)
SHARD_SEED = 202


def _load_bench() -> dict:
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON, "r", encoding="utf-8") as f:
            return json.load(f)
    return {}


def _save_bench(update: dict) -> None:
    data = _load_bench()
    data.update(update)
    with open(BENCH_JSON, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")


def test_query_throughput_during_ingest():
    snapshots = list(dblife_corpus(n_pages=PAGES, seed=SEED,
                                   p_unchanged=0.6)
                     .snapshots(N_SNAPSHOTS))

    with tempfile.TemporaryDirectory() as workdir:
        registry = ViewRegistry(os.path.join(workdir, "views"))
        view = registry.register(ViewConfig(
            name=TASK, task=TASK, work_scale=WORK_SCALE))
        ingest_queue = IngestQueue(maxsize=max(4, N_SNAPSHOTS))
        loop = IngestLoop(registry, ingest_queue)
        relations = list(view.store.schema)

        # Bootstrap generation 1 inline so readers have data from t=0.
        assert loop.apply_one(snapshots[0])

        stop = threading.Event()
        counts = [0] * READERS
        observed = [set() for _ in range(READERS)]   # (index, rel, rows)
        errors = []

        def reader(slot: int) -> None:
            i = 0
            while not stop.is_set():
                rel = relations[i % len(relations)]
                i += 1
                try:
                    result = view.query(rel, limit=1_000_000)
                except Exception as exc:  # noqa: BLE001
                    errors.append(repr(exc))
                    stop.set()
                    return
                if result.total != len(result.tuples):
                    errors.append("truncated full read")
                    stop.set()
                    return
                observed[slot].add((result.snapshot_index, rel,
                                    frozenset(result.tuples)))
                counts[slot] += 1

        threads = [threading.Thread(target=reader, args=(slot,))
                   for slot in range(READERS)]
        for t in threads:
            t.start()

        loop.start()
        ingest_started = time.perf_counter()
        queries_before = sum(counts)
        for snapshot in snapshots[1:]:
            assert ingest_queue.push(snapshot, block=True, timeout=10)
        assert loop.drain(timeout=600)
        ingest_window = time.perf_counter() - ingest_started
        queries_during = sum(counts) - queries_before
        stop.set()
        for t in threads:
            t.join(timeout=10)
        loop.stop()

        assert not errors, errors[0]
        assert loop.snapshots_applied == N_SNAPSHOTS
        assert loop.snapshots_quarantined == 0

        # Consistency audit: every response any reader observed equals
        # the batch NoReuse reference for its own snapshot index.
        task = make_task(TASK, work_scale=WORK_SCALE)
        reference = {}
        with tempfile.TemporaryDirectory() as refdir:
            system = make_system("noreuse", task, refdir)
            for snapshot in snapshots:
                reference[snapshot.index] = canonical_results(
                    system.process(snapshot))
        audited = 0
        for slot_observed in observed:
            for index, rel, rows in slot_observed:
                assert rows == reference[index][rel], (
                    f"snapshot {index} relation {rel}: served response "
                    "diverged from the batch reference")
                audited += 1
        assert view.generation.canonical() == \
            reference[snapshots[-1].index]

        per_snapshot = [
            {
                "snapshot_index": record.snapshot_index,
                "apply_seconds": record.seconds,
                "engine_seconds": record.engine_seconds,
                "lag_seconds": record.lag_seconds,
                "pages_changed": record.pages_changed,
                "pages_unchanged": record.pages_unchanged,
                "tuples_total": record.tuples_total,
            }
            for record in view.history
        ]
        # The bootstrap snapshot is applied inline (no enqueue) — its
        # lag is *zero*, not undefined; report it that way so the lag
        # series starts at 0.0 and no verdict logic ever meets a None.
        if per_snapshot and per_snapshot[0]["lag_seconds"] is None:
            per_snapshot[0]["lag_seconds"] = 0.0

    qps = queries_during / ingest_window if ingest_window else 0.0
    lags = lag_series(per_snapshot)
    assert queries_during > 0, "readers starved during ingest"
    assert qps > 0
    assert lags and all(lag >= 0 for lag in lags), \
        "ingest lag not recorded"
    assert None not in lags

    _save_bench({
        "task": TASK,
        "pages": PAGES,
        "snapshots": N_SNAPSHOTS,
        "work_scale": WORK_SCALE,
        "readers": READERS,
        "ingest_window_seconds": ingest_window,
        "queries_during_ingest": queries_during,
        "qps_during_ingest": qps,
        "responses_audited": audited,
        "max_lag_seconds": max(lags),
        "mean_lag_seconds": sum(lags) / len(lags),
        "per_snapshot": per_snapshot,
        "verdict": "ok",
    })

    lines = [
        f"Serve throughput — task={TASK} pages={PAGES} "
        f"snapshots={N_SNAPSHOTS} readers={READERS} "
        f"work_scale={WORK_SCALE}",
        f"  qps during ingest : {qps:>10.1f}  "
        f"({queries_during} queries / {ingest_window:.3f}s)",
        f"  responses audited : {audited:>10d}  (all matched batch "
        "NoReuse for their generation)",
        "  snapshot   apply(s)     lag(s)   changed  unchanged   tuples",
    ]
    for r in per_snapshot:
        lines.append(
            f"  {r['snapshot_index']:>8}  {r['apply_seconds']:>9.3f} "
            f"{r['lag_seconds']:>10.3f}  {r['pages_changed']:>8}  "
            f"{r['pages_unchanged']:>9}  {r['tuples_total']:>7}")
    save_table("serve_throughput.txt", "\n".join(lines) + "\n")


# ---------------------------------------------------------------------------
# Shard-count scaling


def _shard_config():
    return ViewConfig(name=TASK, task=TASK, system="noreuse",
                      work_scale=0.0)


def _ordered_reference(snapshots):
    """Per snapshot index, per relation: the canonical sorted tuple
    order every serving path must paginate in."""
    task = make_task(TASK, work_scale=0)
    ordered = {}
    with tempfile.TemporaryDirectory() as refdir:
        system = make_system("noreuse", task, refdir)
        for snapshot in snapshots:
            results = canonical_results(system.process(snapshot))
            ordered[snapshot.index] = {
                rel: tuple(sorted(rows, key=_sort_key))
                for rel, rows in results.items()}
    return ordered


def _run_readers(relations, query, ordered, n_readers, run):
    """Start reader threads auditing slices against the reference.

    ``query(rel, offset, limit)`` is the serving path under test;
    every observed page must be byte-identical — content and order —
    to the reference slice for the response's own snapshot index.
    Returns (stop_event, threads, counts, errors, audited).
    """
    stop = threading.Event()
    counts = [0] * n_readers
    errors = []
    audited = [0] * n_readers

    def reader(slot: int) -> None:
        i = 0
        while not stop.is_set():
            rel = relations[i % len(relations)]
            offset = (i * 7) % 50
            i += 1
            try:
                result = query(rel, offset, 25)
            except LookupError:
                continue        # no generation/vector yet
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))
                stop.set()
                return
            want = ordered[result.snapshot_index][rel]
            if (tuple(result.tuples) != want[offset:offset + 25]
                    or result.total != len(want)):
                errors.append(
                    f"snapshot {result.snapshot_index} {rel} "
                    f"@{offset}: response is not byte-identical to "
                    "the batch reference slice")
                stop.set()
                return
            audited[slot] += 1
            counts[slot] += 1

    threads = [threading.Thread(target=reader, args=(slot,),
                                name=f"bench-reader-{run}-{slot}")
               for slot in range(n_readers)]
    for t in threads:
        t.start()
    return stop, threads, counts, errors, audited


def _finish_readers(stop, threads):
    stop.set()
    for t in threads:
        t.join(timeout=10)


def _arm_classic(snapshots, ordered, workdir):
    """shards=1 baseline: the classic eager-store single apply loop."""
    registry = ViewRegistry(os.path.join(workdir, "views"))
    view = registry.register(_shard_config())
    relations = list(view.store.schema)
    queue = IngestQueue(maxsize=max(4, len(snapshots)))
    loop = IngestLoop(registry, queue)
    assert loop.apply_one(snapshots[0])

    stop, threads, counts, errors, audited = _run_readers(
        relations, lambda rel, off, lim: view.query(
            rel, offset=off, limit=lim),
        ordered, SHARD_READERS, "classic")
    loop.start()
    started = time.perf_counter()
    for snapshot in snapshots[1:]:
        assert queue.push(snapshot, block=True, timeout=30)
    assert loop.drain(timeout=600)
    window = time.perf_counter() - started
    _finish_readers(stop, threads)
    assert loop.stop()
    assert not errors, errors[0]
    assert loop.snapshots_quarantined == 0

    records = [{"snapshot_index": r.snapshot_index,
                "lag_seconds": r.lag_seconds,
                "apply_seconds": r.seconds}
               for r in view.history]
    lags = lag_series(records)
    return {
        "shards": 1,
        "window_seconds": window,
        "queries": sum(counts),
        "qps": sum(counts) / window if window else 0.0,
        "responses_audited": sum(audited),
        "max_lag_seconds": max(lags),
        "mean_lag_seconds": sum(lags) / len(lags),
        "lag_series": lags,
    }


def _arm_sharded(snapshots, ordered, workdir, n_shards):
    """Sharded tier: lazy shard stores + consistent vector reads."""
    dep = ShardedDeployment(
        workdir, [_shard_config()], n_shards=n_shards,
        capacity=max(4, len(snapshots)))
    relations = list(dep.workers[0].registry.get(TASK).store.schema)
    dep.apply_inline(snapshots[0])

    stop, threads, counts, errors, audited = _run_readers(
        relations, lambda rel, off, lim: dep.router.query(
            TASK, rel, offset=off, limit=lim),
        ordered, SHARD_READERS, f"shards{n_shards}")
    dep.start()
    started = time.perf_counter()
    for snapshot in snapshots[1:]:
        assert dep.push(snapshot, block=True, timeout=30)
    assert dep.drain(timeout=600)
    window = time.perf_counter() - started
    _finish_readers(stop, threads)
    healthy = dep.healthz()["ok"]
    assert dep.stop()
    assert not errors, errors[0]
    assert healthy

    publishes = dep.router.publishes(TASK)
    assert len(publishes) == len(snapshots)
    lags = lag_series(publishes)
    return {
        "shards": n_shards,
        "window_seconds": window,
        "queries": sum(counts),
        "qps": sum(counts) / window if window else 0.0,
        "responses_audited": sum(audited),
        "max_lag_seconds": max(lags),
        "mean_lag_seconds": sum(lags) / len(lags),
        "lag_series": lags,
    }


def test_shard_count_scaling():
    """qps + max ingest lag vs shards ∈ {1, 2, 4}, same churn series.

    The acceptance claim: max lag at 4 shards strictly below the
    1-shard baseline — on one CPU, so the margin comes from the lazy
    index moving dedupe+sort off the apply path, not from threads.
    """
    snapshots = list(dblife_corpus(n_pages=SHARD_PAGES, seed=SHARD_SEED,
                                   p_unchanged=SHARD_UNCHANGED)
                     .snapshots(SHARD_SNAPSHOTS))
    ordered = _ordered_reference(snapshots)

    arms = []
    for n_shards in SHARD_COUNTS:
        with tempfile.TemporaryDirectory() as workdir:
            if n_shards == 1:
                arms.append(_arm_classic(snapshots, ordered, workdir))
            else:
                arms.append(_arm_sharded(snapshots, ordered, workdir,
                                         n_shards))

    by_shards = {arm["shards"]: arm for arm in arms}
    baseline = by_shards[1]["max_lag_seconds"]
    four = by_shards[4]["max_lag_seconds"]
    for arm in arms:
        assert arm["responses_audited"] > 0, \
            f"readers starved at shards={arm['shards']}"
        assert all(lag >= 0.0 for lag in arm["lag_series"])
    assert four < baseline, (
        f"max ingest lag at 4 shards ({four:.4f}s) must be strictly "
        f"below the 1-shard baseline ({baseline:.4f}s)")

    _save_bench({
        "shard_scaling": {
            "task": TASK,
            "pages": SHARD_PAGES,
            "snapshots": SHARD_SNAPSHOTS,
            "p_unchanged": SHARD_UNCHANGED,
            "readers": SHARD_READERS,
            "system": "noreuse",
            "work_scale": 0.0,
            "arms": arms,
            "max_lag_speedup_4_vs_1": (baseline / four
                                       if four > 0 else None),
            "verdict": "ok",
        },
    })

    lines = [
        f"Shard scaling — task={TASK} pages={SHARD_PAGES} "
        f"snapshots={SHARD_SNAPSHOTS} p_unchanged={SHARD_UNCHANGED} "
        f"readers={SHARD_READERS}",
        "  shards        qps   max lag(s)  mean lag(s)    audited",
    ]
    for arm in arms:
        lines.append(
            f"  {arm['shards']:>6}  {arm['qps']:>9.1f}  "
            f"{arm['max_lag_seconds']:>11.4f}  "
            f"{arm['mean_lag_seconds']:>11.4f}  "
            f"{arm['responses_audited']:>9}")
    lines.append(
        f"  max-lag speedup 4 vs 1: {baseline / four:.2f}x "
        "(strictly-below acceptance)")
    save_table("shard_scaling.txt", "\n".join(lines) + "\n")


def test_front_door_saturation():
    """Past-capacity arrival: admission rejects, lag stays bounded.

    Push far more snapshots than the admission pool holds without
    blocking. The front door must reject the overflow (the HTTP 429
    path), never queue it, and everything admitted must publish a
    consistent vector — saturation degrades *throughput*, not
    consistency, and queue depth (hence lag) is bounded by capacity.
    """
    capacity = 2
    snapshots = list(dblife_corpus(n_pages=64, seed=SHARD_SEED + 1,
                                   p_unchanged=0.5)
                     .snapshots(10))
    ordered = _ordered_reference(snapshots)
    with tempfile.TemporaryDirectory() as workdir:
        dep = ShardedDeployment(workdir, [_shard_config()],
                                n_shards=2, capacity=capacity)
        relations = list(dep.workers[0].registry.get(TASK).store.schema)
        dep.apply_inline(snapshots[0])
        dep.start()
        accepted, rejected = [snapshots[0].index], 0
        for snapshot in snapshots[1:]:
            if dep.push(snapshot, block=False):
                accepted.append(snapshot.index)
            else:
                rejected += 1
            assert dep.depth <= capacity
        assert dep.drain(timeout=600)
        vector = dep.router.vector(TASK)
        healthy = dep.healthz()["ok"]
        result = dep.router.query(TASK, relations[0], limit=100000)
        assert dep.stop()

    assert rejected > 0, \
        "saturation never hit backpressure — capacity not enforced"
    # The barrier published exactly the admitted snapshots, in order,
    # and the final state is byte-identical to the reference for the
    # last accepted snapshot.
    assert vector.snapshot_index == accepted[-1]
    assert healthy
    assert tuple(result.tuples) == \
        ordered[accepted[-1]][relations[0]][:100000]

    _save_bench({
        "saturation": {
            "capacity": capacity,
            "offered": len(snapshots),
            "accepted": len(accepted),
            "rejected": rejected,
            "final_snapshot_index": accepted[-1],
            "verdict": "ok",
        },
    })
