"""Ablations of Delex's design decisions (called out in DESIGN.md).

A1 — reuse level: IE *units* (blackbox + absorbed σ/π, Section 4)
     versus bare blackboxes. Units store post-selection tuples, so the
     capture files are smaller and copying cheaper, at identical final
     results. Showcased on "blockbuster", whose absorbed σ filters
     most gross facts out of the capture.

A2 — the RU matcher (Section 5.4): plans that recycle one expensive
     matcher's work across units versus paying DN (re-extraction) or a
     fresh expensive matcher at every unit.
"""

import os

import pytest

from conftest import corpus_snapshots, save_table

from repro.extractors import make_task
from repro.plan import compile_program, find_units
from repro.reuse.engine import PlanAssignment, ReuseEngine


def run_two_snapshots(plan, units, assignment, snaps, tmp, tag):
    engine = ReuseEngine(plan, units, assignment)
    d0 = os.path.join(tmp, tag, "0")
    d1 = os.path.join(tmp, tag, "1")
    engine.run_snapshot(snaps[0], None, None, d0)
    result = engine.run_snapshot(snaps[1], snaps[0], d0, d1)
    o_blocks = sum(s.o_blocks for s in result.unit_stats.values())
    o_tuples = sum(s.output_tuples for s in result.unit_stats.values())
    return result, o_blocks, o_tuples


def test_ablation_unit_vs_blackbox_capture(benchmark, tmp_path):
    task = make_task("blockbuster", work_scale=0.5)
    snaps = corpus_snapshots("blockbuster", "wikipedia",
                             n_snapshots=2, pages=40)
    plan = compile_program(task.program, task.registry)

    def run_both():
        out = {}
        for label, absorb in (("unit-level", True),
                              ("blackbox-level", False)):
            units = find_units(plan, absorb=absorb)
            assignment = PlanAssignment.uniform(units, "UD")
            result, blocks, tuples = run_two_snapshots(
                plan, units, assignment, snaps, str(tmp_path), label)
            out[label] = {"seconds": result.timings.total,
                          "o_blocks": blocks, "o_tuples": tuples,
                          "results": {r: frozenset(v) for r, v in
                                      result.results.items()}}
        return out

    data = benchmark.pedantic(run_both, rounds=1, iterations=1)
    unit = data["unit-level"]
    bbox = data["blackbox-level"]
    lines = ["Ablation A1 — reuse at IE-unit vs blackbox level "
             "(blockbuster)",
             f"{'level':<16}{'seconds':>9}{'O tuples':>10}{'O blocks':>10}"]
    for label, row in data.items():
        lines.append(f"{label:<16}{row['seconds']:>9.3f}"
                     f"{row['o_tuples']:>10}{row['o_blocks']:>10}")
    save_table("ablation_unit_level.txt", "\n".join(lines) + "\n")

    # Same final results either way (correctness is not the trade-off).
    assert unit["results"] == bbox["results"]
    # Absorbed σ/π means strictly fewer captured tuples (Section 4's
    # argument for unit-level reuse).
    assert unit["o_tuples"] < bbox["o_tuples"]


def test_ablation_ru_matcher(benchmark, tmp_path):
    task = make_task("play", work_scale=0.5)
    snaps = corpus_snapshots("play", "wikipedia", n_snapshots=2, pages=40)
    plan = compile_program(task.program, task.registry)
    units = find_units(plan)
    bottom = units[0].uid
    uppers = [u.uid for u in units[1:]]

    plans = {
        "ST + RU above": PlanAssignment(
            {bottom: "ST", **{u: "RU" for u in uppers}}),
        "ST + DN above": PlanAssignment(
            {bottom: "ST", **{u: "DN" for u in uppers}}),
        "ST everywhere": PlanAssignment(
            {u.uid: "ST" for u in units}),
    }

    def run_all():
        out = {}
        for label, assignment in plans.items():
            result, _, _ = run_two_snapshots(
                plan, units, assignment, snaps, str(tmp_path),
                label.replace(" ", "_"))
            row = result.timings.as_row()
            out[label] = {"seconds": result.timings.total,
                          "match": row["match"],
                          "extraction": row["extraction"]}
        return out

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = ["Ablation A2 — sharing matching work via RU (play)",
             f"{'plan':<16}{'seconds':>9}{'match':>8}{'extract':>9}"]
    for label, row in data.items():
        lines.append(f"{label:<16}{row['seconds']:>9.3f}"
                     f"{row['match']:>8.3f}{row['extraction']:>9.3f}")
    save_table("ablation_ru.txt", "\n".join(lines) + "\n")

    ru = data["ST + RU above"]
    dn = data["ST + DN above"]
    st = data["ST everywhere"]
    # RU recycles the bottom matcher's work: cheaper extraction than
    # DN-above at almost no extra matching cost.
    assert ru["extraction"] < dn["extraction"]
    assert ru["seconds"] < dn["seconds"]
    # ...and far cheaper matching than running ST at every unit.
    assert ru["match"] < st["match"]


def test_ablation_matching_scope(benchmark, tmp_path):
    """A3 — extended matching scope (paper future work (a)).

    On a corpus where pages are regularly *renamed* (site
    reorganizations), the paper's same-URL scope loses those pages'
    history; the fingerprint scope recovers it. Measured as Delex
    runtime with each scope on a rename-heavy corpus.
    """
    from repro.corpus.evolve import ChangeModel, EvolvingCorpus
    from repro.corpus.generators import WikipediaGenerator
    from repro.core.delex import DelexSystem
    from repro.reuse.scope import FingerprintScope, SameUrlScope

    task_scale = 0.5
    model = ChangeModel(p_unchanged=0.5, p_removed=0.0, p_added=0.0,
                        p_renamed=0.35, mean_edits=2.0)
    corpus = EvolvingCorpus(WikipediaGenerator(), 30, model, seed=31)
    snaps = list(corpus.snapshots(4))

    def run_scope(scope, tag):
        task = make_task("play", work_scale=task_scale)
        system = DelexSystem(task, str(tmp_path / tag), sample_size=5,
                             scope=scope)
        prev = None
        seconds = 0.0
        results = None
        for i, snap in enumerate(snaps):
            result = system.process(snap, prev)
            if i:
                seconds += result.timings.total
            results = {r: frozenset(v) for r, v in result.results.items()}
            prev = snap
        return seconds, results

    def run_both():
        url_secs, url_results = run_scope(SameUrlScope(), "url")
        fp_secs, fp_results = run_scope(FingerprintScope(), "fp")
        return {"same-url": (url_secs, url_results),
                "fingerprint": (fp_secs, fp_results)}

    data = benchmark.pedantic(run_both, rounds=1, iterations=1)
    url_secs, url_results = data["same-url"]
    fp_secs, fp_results = data["fingerprint"]
    lines = ["Ablation A3 — matching scope on a rename-heavy corpus "
             "(play, 35 % renames/snapshot)",
             f"{'scope':<14}{'seconds':>9}",
             f"{'same-url':<14}{url_secs:>9.3f}",
             f"{'fingerprint':<14}{fp_secs:>9.3f}"]
    save_table("ablation_scope.txt", "\n".join(lines) + "\n")

    # Identical extraction results either way...
    assert url_results == fp_results
    # ...but the fingerprint scope recovers renamed pages' reuse.
    assert fp_secs < url_secs
