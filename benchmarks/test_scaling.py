"""Corpus-size scaling (extension).

Section 5.2's streaming design promises one sequential pass over the
corpus and the reuse files per snapshot — cost linear in corpus size,
with Delex's advantage over from-scratch independent of scale. This
benchmark doubles the page count twice and checks both properties.
"""

import os
import tempfile

import pytest

from conftest import save_table

from repro.corpus import wikipedia_corpus
from repro.core.delex import DelexSystem
from repro.core.noreuse import NoReuseSystem
from repro.extractors import make_task
from repro.plan import compile_program


def run_at_scale(pages, tmp_root):
    task = make_task("play", work_scale=0.3)
    snaps = list(wikipedia_corpus(n_pages=pages, seed=61).snapshots(3))
    plan = compile_program(task.program, task.registry)
    scratch = NoReuseSystem(plan)
    delex = DelexSystem(task, os.path.join(tmp_root, str(pages)),
                        sample_size=5)
    nr = dx = 0.0
    prev = None
    for i, snap in enumerate(snaps):
        nr_result = scratch.process(snap)
        dx_result = delex.process(snap, prev)
        if i:
            nr += nr_result.timings.total
            dx += dx_result.timings.total
        prev = snap
    return {"noreuse": nr, "delex": dx}


def test_corpus_size_scaling(benchmark):
    sizes = (20, 40, 80)

    def sweep():
        with tempfile.TemporaryDirectory() as tmp_root:
            return {n: run_at_scale(n, tmp_root) for n in sizes}

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Corpus-size scaling ('play', 2 reuse snapshots)",
             f"{'pages':>6}{'noreuse':>9}{'delex':>8}{'speedup':>9}"]
    for n, row in sorted(data.items()):
        speedup = row["noreuse"] / max(row["delex"], 1e-9)
        lines.append(f"{n:>6}{row['noreuse']:>9.3f}{row['delex']:>8.3f}"
                     f"{speedup:>9.1f}")
    save_table("scaling.txt", "\n".join(lines) + "\n")

    # Near-linear growth: 4x pages costs clearly less than 8x time.
    assert data[80]["noreuse"] < 8 * data[20]["noreuse"]
    assert data[80]["delex"] < 8 * max(data[20]["delex"], 1e-3)
    # The reuse advantage holds at every scale.
    for n in sizes:
        assert data[n]["delex"] < data[n]["noreuse"]
