"""Figure 13 + the alpha/beta sensitivity study (Section 8).

Three sweeps on the "play" task:

* 13a — runtime of the Delex-selected plan vs statistics sample size.
  Paper shape: a small sample (~30 pages of 10k; proportionally a
  handful here) already yields a good plan.
* 13b — runtime vs number of history snapshots used for estimating the
  change rate. Paper shape: ~3 snapshots suffice.
* α-sensitivity — inflate one blackbox's α (the paper grows it from 52
  to 150 to 250, ~5x) and watch Delex's runtime grow gracefully
  (paper: +15 % at ~3x, +38 % at ~5x).
"""

import os

import pytest

from conftest import corpus_snapshots, save_table

from repro.core.delex import DelexSystem
from repro.extractors import make_task


def timed_delex(task, snaps, tmp_root, tag, **kwargs):
    system = DelexSystem(task, os.path.join(tmp_root, tag), **kwargs)
    prev = None
    seconds = []
    for snap in snaps:
        result = system.process(snap, prev)
        seconds.append(result.timings.total)
        prev = snap
    return sum(seconds[1:])  # skip bootstrap


def test_fig13a_sample_size(benchmark, tmp_path):
    task = make_task("play", work_scale=0.5)
    snaps = corpus_snapshots("play", "wikipedia", n_snapshots=4, pages=30)

    def sweep():
        out = {}
        for sample in (2, 4, 8, 16):
            out[sample] = timed_delex(task, snaps, str(tmp_path),
                                      f"s{sample}", sample_size=sample)
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Figure 13a — Delex runtime vs statistics sample size",
             f"{'sample pages':>13}{'seconds':>9}"]
    for sample, secs in sorted(data.items()):
        lines.append(f"{sample:>13}{secs:>9.3f}")
    save_table("fig13a_sample_size.txt", "\n".join(lines) + "\n")
    # A tiny sample must not blow the runtime up: the curve is flat-ish.
    assert max(data.values()) < 2.5 * min(data.values())


def test_fig13b_history_snapshots(benchmark, tmp_path):
    task = make_task("play", work_scale=0.5)
    snaps = corpus_snapshots("play", "wikipedia", n_snapshots=6, pages=30)

    def sweep():
        out = {}
        for k in (1, 2, 3, 5):
            out[k] = timed_delex(task, snaps, str(tmp_path), f"k{k}",
                                 sample_size=6, k_snapshots=k)
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Figure 13b — Delex runtime vs history snapshots used",
             f"{'snapshots':>10}{'seconds':>9}"]
    for k, secs in sorted(data.items()):
        lines.append(f"{k:>10}{secs:>9.3f}")
    save_table("fig13b_history.txt", "\n".join(lines) + "\n")
    assert max(data.values()) < 2.0 * min(data.values())


def test_alpha_sensitivity(benchmark, tmp_path):
    """Inflating a blackbox's (alpha, beta) degrades Delex gracefully.

    The paper grows one "play" blackbox's alpha ~3x and ~5x and sees
    runtime grow only 15 % and 38 %. The lever needs alpha well below
    the matched region size, so we use the talk task (alpha = 155
    against ~2 KB pages) with a fixed UD plan on a half-changing
    corpus; conservative declarations never change results, only the
    amount of safe reuse.
    """
    import os
    import tempfile

    from repro.corpus import dblife_corpus
    from repro.plan import compile_program, find_units
    from repro.reuse.engine import PlanAssignment, ReuseEngine

    snaps = list(dblife_corpus(n_pages=40, seed=55,
                               p_unchanged=0.5).snapshots(4))

    def run_with_alpha(scale):
        task = make_task("talk", work_scale=0.5)
        ex = task.registry.extractor("extractTalk")
        ex.scope = round(ex.scope * scale)
        ex.context = round(ex.context * scale)
        plan = compile_program(task.program, task.registry)
        units = find_units(plan)
        engine = ReuseEngine(plan, units,
                             PlanAssignment({units[0].uid: "UD"}))
        with tempfile.TemporaryDirectory() as td:
            prev = prev_dir = None
            seconds = 0.0
            chars = 0
            for i, snap in enumerate(snaps):
                out = os.path.join(td, str(i))
                result = engine.run_snapshot(snap, prev, prev_dir, out)
                if i:
                    seconds += result.timings.total
                    chars += sum(st.extracted_chars
                                 for st in result.unit_stats.values())
                prev, prev_dir = snap, out
        return seconds, chars

    def sweep():
        return {scale: run_with_alpha(scale) for scale in (1, 3, 5)}

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Alpha sensitivity — Delex runtime vs inflated alpha "
             "('talk', fixed UD plan)",
             f"{'alpha x':>8}{'seconds':>9}{'re-extracted':>14}"
             f"{'growth':>8}"]
    base_secs, _ = data[1]
    for scale, (secs, chars) in sorted(data.items()):
        lines.append(f"{scale:>8}{secs:>9.3f}{chars:>14}"
                     f"{secs / base_secs - 1:>8.0%}")
    save_table("fig13c_alpha.txt", "\n".join(lines) + "\n")
    # Rough declarations cost something, but gracefully: 5x alpha must
    # cost far less than 5x runtime (paper: +38 %; noise allows more).
    secs5, chars5 = data[5]
    _, chars1 = data[1]
    assert chars5 > chars1  # the lever is real
    assert secs5 < 2.5 * base_secs  # ...and sublinear in alpha
