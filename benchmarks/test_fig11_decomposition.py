"""Figure 11: runtime decomposition (Match / Extraction / Copy / Opt /
Others).

Shares the Figure 10 runs. Paper-reported shape: matching and
extraction dominate; Delex trades extraction time for (much cheaper)
matching and copying; its optimization and capture overheads stay an
insignificant share of total runtime.
"""

import pytest

from conftest import fig10_cache, save_table  # noqa: F401 (fixture)

from repro.extractors import RULE_TASKS

SYSTEMS = ("noreuse", "shortcut", "cyclex", "delex")
COLUMNS = ("match", "extraction", "copy", "opt", "io", "others", "total")


@pytest.mark.parametrize("task_name", RULE_TASKS)
def test_fig11_decomposition(benchmark, fig10_cache, task_name):
    reports = benchmark.pedantic(fig10_cache.reports, args=(task_name,),
                                 rounds=1, iterations=1)
    lines = [f"Figure 11 — {task_name}: mean per-snapshot decomposition (s)",
             f"{'system':<10}" + "".join(f"{c:>12}" for c in COLUMNS)]
    decomp = {}
    for system in SYSTEMS:
        row = reports[system].mean_decomposition()
        decomp[system] = row
        lines.append(f"{system:<10}" + "".join(
            f"{row[c]:>12.4f}" for c in COLUMNS))
    save_table(f"fig11_{task_name}.txt", "\n".join(lines) + "\n")

    # No-reuse is pure extraction.
    nr = decomp["noreuse"]
    assert nr["extraction"] > 0.8 * nr["total"]
    # Delex cuts extraction time sharply vs No-reuse (paper: 37-85 %).
    dx = decomp["delex"]
    assert dx["extraction"] < 0.63 * nr["extraction"]
    # Delex spends more on matching and copying than Shortcut...
    sc = decomp["shortcut"]
    assert dx["match"] + dx["copy"] >= sc["match"] + sc["copy"]
    # ...but its total overhead stays bounded by the extraction saved.
    assert dx["total"] < nr["total"]
