"""Matcher trade-off microbenchmark (extension).

Section 5.4 characterizes the matchers qualitatively: DN is free and
finds nothing; UD is fast but misses moved text; ST is complete but
expensive; RU is nearly free given a donor. This benchmark measures
the actual trade-off — per-pair matching time vs. the fraction of the
changed pages' text covered by (p-disjoint) match segments — on real
evolved page pairs, including the pluggable WS (winnowing) matcher.
"""

import time

import pytest

from conftest import save_table

from repro.corpus import wikipedia_corpus
from repro.matchers import MatchCache, make_matcher
from repro.text.regions import select_p_disjoint


def collect_pairs(n_pages=40, seed=77):
    snaps = list(wikipedia_corpus(n_pages=n_pages, seed=seed).snapshots(2))
    pairs = []
    for page in snaps[1]:
        old = snaps[0].get(page.url)
        if old is not None and not page.identical_to(old):
            pairs.append((page, old))
    return pairs


def measure(name, pairs):
    matcher = make_matcher(name, MatchCache(), min_length=12)
    seconds = 0.0
    covered = 0
    total = 0
    for page, old in pairs:
        start = time.perf_counter()
        segments = matcher.match(page.text, page.whole,
                                 old.text, old.whole)
        seconds += time.perf_counter() - start
        disjoint = select_p_disjoint(segments)
        for seg in disjoint:
            assert seg.verify(page.text, old.text)
        covered += sum(s.length for s in disjoint)
        total += len(page.text)
    return {"seconds": seconds, "coverage": covered / max(1, total)}


def test_matcher_tradeoffs(benchmark):
    pairs = collect_pairs()
    assert pairs, "need changed page pairs"

    def sweep():
        return {name: measure(name, pairs)
                for name in ("DN", "UD", "ST", "WS")}

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"Matcher trade-offs over {len(pairs)} changed page pairs",
             f"{'matcher':<9}{'seconds':>9}{'coverage':>10}"]
    for name, row in data.items():
        lines.append(f"{name:<9}{row['seconds']:>9.4f}"
                     f"{row['coverage']:>10.2%}")
    save_table("matcher_tradeoffs.txt", "\n".join(lines) + "\n")

    # The qualitative claims of Section 5.4, measured:
    assert data["DN"]["coverage"] == 0.0
    # ST is the most complete matcher...
    assert data["ST"]["coverage"] >= data["UD"]["coverage"]
    assert data["ST"]["coverage"] >= data["WS"]["coverage"]
    # ...and costs more than the diff-based matcher.
    assert data["ST"]["seconds"] > data["UD"]["seconds"]
    # Every matcher recovers most of a lightly edited page.
    for name in ("UD", "ST", "WS"):
        assert data[name]["coverage"] > 0.5
