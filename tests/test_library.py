"""The evaluation IE task library (Figure 8b parity + behavior)."""

import pytest

from repro.corpus.generators import DBLifeGenerator, WikipediaGenerator
from repro.extractors.library import ALL_TASKS, RULE_TASKS, make_task
from repro.plan import compile_program, find_units, partition_chains
from repro.core.noreuse import NoReuseSystem
from repro.corpus.snapshot import Snapshot
from repro.text.document import Page
import random

FIGURE_8B = {  # task -> number of IE blackboxes (Figure 8b)
    "talk": 1,
    "chair": 3,
    "advise": 5,
    "blockbuster": 2,
    "play": 4,
    "award": 6,
}


class TestTaskConstruction:
    @pytest.mark.parametrize("name", ALL_TASKS)
    def test_builds_and_compiles(self, name):
        task = make_task(name, work_scale=0)
        plan = compile_program(task.program, task.registry)
        units = find_units(plan)
        assert len(units) == len(task.blackboxes)
        assert partition_chains(units)

    @pytest.mark.parametrize("name,count", sorted(FIGURE_8B.items()))
    def test_blackbox_counts_match_figure_8b(self, name, count):
        assert len(make_task(name, work_scale=0).blackboxes) == count

    def test_infobox_has_five_blackboxes(self):
        assert len(make_task("infobox").blackboxes) == 5

    def test_unknown_task(self):
        with pytest.raises(KeyError):
            make_task("nope")

    def test_talk_has_paper_alpha_beta(self):
        task = make_task("talk", work_scale=0)
        (extractor,) = task.extractors()
        assert extractor.scope == 155
        assert extractor.context == 9
        assert task.program_alpha == 155
        assert task.program_beta == 9

    def test_section_tasks_have_page_scale_program_context(self):
        for name in ("chair", "advise", "blockbuster", "play", "award"):
            task = make_task(name, work_scale=0)
            assert task.program_beta >= 8000, name

    def test_work_scale_zero_disables_burn(self):
        task = make_task("chair", work_scale=0)
        assert all(e.work_factor == 0 for e in task.extractors())


def run_on_text(task, text):
    plan = compile_program(task.program, task.registry)
    system = NoReuseSystem(plan)
    snap = Snapshot(0, [Page.from_url("u", text)])
    result = system.process(snap)
    return result.results


class TestTaskExtractionBehavior:
    def test_talk_extracts_planted_fact(self):
        task = make_task("talk", work_scale=0)
        text = ('Talk: "Scalable Indexing for Web Data" by Alice Chen. '
                "Topics: query optimization, web crawling. "
                "Location: CS 105 at 3 pm.\n")
        results = run_on_text(task, text)
        rows = results["talk"]
        assert len(rows) == 1
        fields = dict(rows[0])
        assert fields["speaker"][2] == "Alice Chen"
        assert "query optimization" in fields["topics"][2]

    def test_chair_extracts_planted_fact(self):
        task = make_task("chair", work_scale=0)
        text = ("== Service ==\n"
                "Karen Xu serves as demo chair of VLDB 2008.\n"
                "== News ==\nnothing\n")
        rows = run_on_text(task, text)["chair"]
        fields = dict(rows[0])
        assert fields["person"][2] == "Karen Xu"
        assert fields["ctype"][2] == "demo"
        assert fields["conf"][2] == "VLDB 2008"

    def test_chair_ignores_facts_outside_section(self):
        task = make_task("chair", work_scale=0)
        text = "Karen Xu serves as demo chair of VLDB 2008.\n"
        assert run_on_text(task, text)["chair"] == []

    def test_advise_extracts_triple(self):
        task = make_task("advise", work_scale=0)
        text = ("== Advising ==\n"
                "Prof. Maria Gupta advises Ivan Rossi on entity resolution.\n")
        rows = run_on_text(task, text)["advise"]
        fields = dict(rows[0])
        assert fields["advisor"][2] == "Maria Gupta"
        assert fields["advisee"][2] == "Ivan Rossi"
        assert fields["topic"][2] == "entity resolution"

    def test_blockbuster_filters_by_gross(self):
        task = make_task("blockbuster", work_scale=0)
        text = ("== Box office ==\n"
                "Midnight Horizon grossed $240 million worldwide.\n"
                "Velvet Garden grossed $35 million worldwide.\n")
        rows = run_on_text(task, text)["blockbuster"]
        movies = {dict(r)["movie"][2] for r in rows}
        assert movies == {"Midnight Horizon"}

    def test_play_extracts_pair(self):
        task = make_task("play", work_scale=0)
        text = ("== Filmography ==\n"
                "Nina Weber starred as Dr. Malone in Crimson Harbor "
                "(1999).\n")
        rows = run_on_text(task, text)["play"]
        fields = dict(rows[0])
        assert fields["actor"][2] == "Nina Weber"
        assert fields["movie"][2] == "Crimson Harbor"

    def test_award_extracts_all_four_fields(self):
        task = make_task("award", work_scale=0)
        text = ("== Awards ==\n"
                "Oscar Novak won the Golden Globe Award for Paper Kingdom "
                "(2001).\n")
        rows = run_on_text(task, text)["award"]
        fields = dict(rows[0])
        assert fields["actor"][2] == "Oscar Novak"
        assert fields["award"][2] == "Golden Globe Award"
        assert fields["movie"][2] == "Paper Kingdom"
        assert fields["year"][2] == "2001"

    def test_infobox_extracts_from_actor_page(self):
        task = make_task("infobox")
        rng = random.Random(4)
        gen = WikipediaGenerator()
        page = gen._actor_page(rng, "http://x/a")
        results = run_on_text(task, page.text())
        assert results["birthDate"], "expected a birth date mention"
        assert results["name"], "expected a name mention"


class TestGeneratorExtractorContract:
    """Every generated fact line must be extractable — the corpus and
    the task library form one contract."""

    def test_dblife_fact_lines_extract(self):
        rng = random.Random(9)
        gen = DBLifeGenerator()
        chair = make_task("chair", work_scale=0)
        found = 0
        for _ in range(10):
            line = gen._chair_line(rng)
            rows = run_on_text(chair, f"== Service ==\n{line}\n")["chair"]
            found += bool(rows)
        assert found == 10

    def test_wikipedia_fact_lines_extract(self):
        rng = random.Random(9)
        gen = WikipediaGenerator()
        play = make_task("play", work_scale=0)
        found = 0
        for _ in range(10):
            line = gen._play_line(rng)
            rows = run_on_text(play, f"== Filmography ==\n{line}\n")["play"]
            found += bool(rows)
        assert found == 10
