"""Reuse file writer/reader: grouping, sequential scans, accounting."""

import json
import os

import pytest

from repro.reuse.files import (
    BLOCK_SIZE,
    BlockWriter,
    InputTuple,
    OutputTuple,
    ReuseFileReader,
    ReuseFileWriter,
    decode_fields,
    encode_fields,
    group_outputs_by_input,
    iter_all_pages,
)
from repro.text.span import Span


class TestBlockWriter:
    def test_buffers_until_block(self, tmp_path):
        path = str(tmp_path / "w.dat")
        writer = BlockWriter(path)
        writer.append({"x": 1})
        assert os.path.getsize(path) == 0  # still buffered
        writer.close()
        assert os.path.getsize(path) > 0

    def test_flushes_on_full_block(self, tmp_path):
        path = str(tmp_path / "w.dat")
        writer = BlockWriter(path)
        payload = {"x": "y" * 100}
        for _ in range(BLOCK_SIZE // 50):
            writer.append(payload)
        assert writer.flushes >= 1
        writer.close()

    def test_blocks_accounting(self, tmp_path):
        writer = BlockWriter(str(tmp_path / "w.dat"))
        writer.append({"x": "a" * (BLOCK_SIZE + 10)})
        assert writer.blocks == 2
        writer.close()

    def test_append_after_close_raises(self, tmp_path):
        writer = BlockWriter(str(tmp_path / "w.dat"))
        writer.close()
        with pytest.raises(ValueError):
            writer.append({"x": 1})

    def test_context_manager(self, tmp_path):
        path = str(tmp_path / "w.dat")
        with BlockWriter(path) as writer:
            writer.append({"k": 1})
        assert json.loads(open(path).read()) == {"k": 1}


class TestFieldCodec:
    def test_roundtrip(self):
        fields = {"name": Span("q", 3, 9), "count": 4, "flag": "yes"}
        encoded = encode_fields(fields)
        decoded = decode_fields(encoded, "p")
        assert decoded["name"] == Span("p", 3, 9)
        assert decoded["count"] == 4
        assert decoded["flag"] == "yes"

    def test_encoding_sorted_by_name(self):
        encoded = encode_fields({"z": 1, "a": 2})
        assert [f[0] for f in encoded] == ["a", "z"]


def write_two_pages(path):
    writer = ReuseFileWriter(path)
    writer.begin_page("page1")
    t0 = writer.append_input("page1", 0, 100)
    t1 = writer.append_input("page1", 100, 200)
    writer.begin_page("page2")
    t2 = writer.append_input("page2", 0, 50)
    writer.close()
    return t0, t1, t2


class TestReuseFileRoundtrip:
    def test_inputs_grouped_by_page(self, tmp_path):
        path = str(tmp_path / "u.I.reuse")
        t0, t1, t2 = write_two_pages(path)
        reader = ReuseFileReader(path)
        p1 = reader.read_page_inputs("page1")
        assert [t.tid for t in p1] == [t0, t1]
        assert p1[0].interval.end == 100
        p2 = reader.read_page_inputs("page2")
        assert [t.tid for t in p2] == [t2]
        reader.close()

    def test_sequential_skip_of_missing_pages(self, tmp_path):
        path = str(tmp_path / "u.I.reuse")
        write_two_pages(path)
        reader = ReuseFileReader(path)
        # page1 left the corpus: seeking page2 must skip its group.
        assert [t.tid for t in reader.read_page_inputs("page2")] == [2]
        reader.close()

    def test_missing_page_returns_empty(self, tmp_path):
        path = str(tmp_path / "u.I.reuse")
        write_two_pages(path)
        reader = ReuseFileReader(path)
        reader.read_page_inputs("page1")
        reader.read_page_inputs("page2")
        assert reader.read_page_inputs("page3") == []
        reader.close()

    def test_outputs_roundtrip(self, tmp_path):
        path = str(tmp_path / "u.O.reuse")
        writer = ReuseFileWriter(path)
        writer.begin_page("p")
        fields = encode_fields({"v": Span("p", 5, 9), "n": 3})
        writer.append_output("p", itid=7, fields=fields)
        writer.close()
        reader = ReuseFileReader(path)
        outs = reader.read_page_outputs("p")
        assert len(outs) == 1
        assert outs[0].itid == 7
        assert outs[0].extent() == (5, 9)
        reader.close()

    def test_empty_page_group(self, tmp_path):
        path = str(tmp_path / "u.I.reuse")
        writer = ReuseFileWriter(path)
        writer.begin_page("a")
        writer.begin_page("b")
        writer.append_input("b", 0, 10)
        writer.close()
        reader = ReuseFileReader(path)
        assert reader.read_page_inputs("a") == []
        assert len(reader.read_page_inputs("b")) == 1
        reader.close()

    def test_write_requires_page_group(self, tmp_path):
        writer = ReuseFileWriter(str(tmp_path / "u.I.reuse"))
        with pytest.raises(ValueError):
            writer.append_input("nowhere", 0, 5)
        writer.close()

    def test_iter_all_pages(self, tmp_path):
        path = str(tmp_path / "u.I.reuse")
        write_two_pages(path)
        pages = dict(iter_all_pages(path))
        assert set(pages) == {"page1", "page2"}
        assert len(pages["page1"]) == 2

    def test_unicode_in_c_field(self, tmp_path):
        path = str(tmp_path / "u.I.reuse")
        writer = ReuseFileWriter(path)
        writer.begin_page("p")
        writer.append_input("p", 0, 5, c='prefix "quoted" — ünïcode')
        writer.close()
        reader = ReuseFileReader(path)
        got = reader.read_page_inputs("p")
        assert got[0].c == 'prefix "quoted" — ünïcode'
        reader.close()


class TestGrouping:
    def test_group_outputs_by_input(self):
        outs = [OutputTuple(0, 5, ()), OutputTuple(1, 5, ()),
                OutputTuple(2, 9, ())]
        grouped = group_outputs_by_input(outs)
        assert {k: len(v) for k, v in grouped.items()} == {5: 2, 9: 1}

    def test_input_tuple_interval(self):
        t = InputTuple(0, "d", 3, 9)
        assert t.interval.start == 3 and t.interval.end == 9
