"""The paper's Figure 2 program, end to end.

R1/R2 extract talk titles and abstracts from seminar announcements;
R3 pairs them when the title occurs immediately before the abstract
and keeps only talks whose abstract mentions "relevance feedback".
This exercises rule chaining, a join of two IE branches, and
non-absorbable selections — and of course reuse correctness on it.
"""

import pytest

from repro.core.noreuse import NoReuseSystem
from repro.core.runner import canonical_results
from repro.corpus.snapshot import snapshot_from_texts
from repro.extractors.rules import RegexExtractor
from repro.plan import compile_program, find_units, partition_chains
from repro.reuse.engine import PlanAssignment, ReuseEngine
from repro.xlog.parser import parse_program
from repro.xlog.registry import Registry

SOURCE = """
    titles(d, title) :- docs(d), extractTitle(d, title).
    abstracts(d, abstract) :- docs(d), extractAbstract(d, abstract).
    talks(title, abstract) :- titles(d, title), abstracts(d, abstract),
        immBefore(title, abstract),
        containsPhrase(abstract, "relevance feedback").
"""

PAGE = (
    "TITLE: Scalable Search Engines\n"
    "ABSTRACT: We study relevance feedback at web scale and present a "
    "new index layout.\n"
    "TITLE: Query Optimization Redux\n"
    "ABSTRACT: Cost models for modern hardware.\n"
    "ABSTRACT: An orphan abstract about relevance feedback methods.\n"
)


@pytest.fixture()
def setup():
    registry = Registry()
    # Spans cover the whole labeled line so that a title line is
    # *immediately* before its abstract line (only a newline between).
    registry.register_extractor(RegexExtractor(
        "extractTitle", r"(?P<t>TITLE: [^\n]+)",
        groups={"t": "t"}, scope=120, context=4))
    registry.register_extractor(RegexExtractor(
        "extractAbstract", r"(?P<a>ABSTRACT: [^\n]+)",
        groups={"a": "a"}, scope=300, context=4))
    program = parse_program(SOURCE, name="figure2")
    plan = compile_program(program, registry)
    return plan


class TestFigure2:
    def test_pairs_only_adjacent_with_phrase(self, setup):
        plan = setup
        snap = snapshot_from_texts(0, {"u": PAGE})
        rows = NoReuseSystem(plan).process(snap).results["talks"]
        assert len(rows) == 1
        fields = dict(rows[0])
        assert fields["title"][2] == "TITLE: Scalable Search Engines"
        assert "relevance feedback" in fields["abstract"][2]

    def test_derived_relations_also_produced(self, setup):
        plan = setup
        snap = snapshot_from_texts(0, {"u": PAGE})
        results = NoReuseSystem(plan).process(snap).results
        assert len(results["titles"]) == 2
        assert len(results["abstracts"]) == 3

    def test_two_chains_one_per_branch(self, setup):
        units = find_units(setup)
        chains = partition_chains(units)
        assert len(units) == 2
        assert len(chains) == 2

    def test_selection_above_join_not_absorbed(self, setup):
        for unit in find_units(setup):
            assert unit.absorbed == ()  # head π keeps d: nothing folds

    def test_reuse_correct_across_edit(self, setup, tmp_path):
        plan = setup
        units = find_units(plan)
        assignment = PlanAssignment.uniform(units, "UD")
        engine = ReuseEngine(plan, units, assignment)
        s0 = snapshot_from_texts(0, {"u": PAGE})
        s1 = snapshot_from_texts(1, {
            "u": PAGE.replace("Cost models", "Better cost models")})
        d0, d1 = str(tmp_path / "0"), str(tmp_path / "1")
        engine.run_snapshot(s0, None, None, d0)
        r1 = engine.run_snapshot(s1, s0, d0, d1)
        expected = NoReuseSystem(plan).process(s1)
        assert canonical_results(r1) == canonical_results(expected)
        copied = sum(s.copied_tuples for s in r1.unit_stats.values())
        assert copied > 0
