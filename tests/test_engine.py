"""Reuse-engine tests, including the Theorem 1 property test.

The property test is the heart of the suite: for randomly evolving
pages and arbitrary matcher assignments, the reuse engine must produce
exactly the same extraction results as from-scratch evaluation.
"""

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.noreuse import NoReuseSystem
from repro.core.runner import canonical_results
from repro.corpus.snapshot import Snapshot
from repro.extractors.rules import LineExtractor, RegexExtractor, SectionExtractor
from repro.matchers.base import MATCHER_NAMES
from repro.plan import compile_program, find_units
from repro.reuse.engine import PlanAssignment, ReuseEngine
from repro.text.document import Page
from repro.xlog.parser import parse_program
from repro.xlog.registry import Registry


def mini_task():
    """A 3-unit chain task over a tiny synthetic grammar."""
    reg = Registry()
    reg.register_extractor(SectionExtractor(
        "getBody", "sec", "Body", scope=4000, context=16))
    reg.register_extractor(LineExtractor(
        "getFacts", "sent", scope=120, must_contain="likes", context=4))
    reg.register_extractor(RegexExtractor(
        "getWho", r"(?P<w>[A-Z][a-z]+) likes",
        groups={"w": "w"}, scope=30, context=8))
    program = parse_program("""
        who(w) :- docs(d), getBody(d, sec), getFacts(sec, sent),
                  getWho(sent, w).
    """)
    return program, reg


NAMES = ["Ana", "Bob", "Cat", "Dan", "Eve", "Fay"]
THINGS = ["tea", "jazz", "chess", "rain", "maps"]


def render_page(rng):
    lines = [f"header {rng.randint(0, 9)}"]
    lines.append("== Body ==")
    for _ in range(rng.randint(1, 5)):
        lines.append(f"{rng.choice(NAMES)} likes {rng.choice(THINGS)}.")
    if rng.random() < 0.5:
        lines.append("== Tail ==")
        lines.append("closing words")
    return "\n".join(lines) + "\n"


def evolve_text(rng, text):
    lines = text.rstrip("\n").split("\n")
    for _ in range(rng.randint(1, 3)):
        op = rng.random()
        if op < 0.4:
            lines.insert(rng.randint(0, len(lines)),
                         f"{rng.choice(NAMES)} likes {rng.choice(THINGS)}.")
        elif op < 0.6 and len(lines) > 1:
            del lines[rng.randrange(len(lines))]
        else:
            i = rng.randrange(len(lines))
            lines[i] = lines[i] + "!"
    return "\n".join(lines) + "\n"


def build_engine(assignment_names):
    program, reg = mini_task()
    plan = compile_program(program, reg)
    units = find_units(plan)
    assignment = PlanAssignment(dict(zip([u.uid for u in units],
                                         assignment_names)))
    return plan, units, assignment


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000),
       matchers=st.tuples(*([st.sampled_from(MATCHER_NAMES + ("WS",))] * 3)))
def test_theorem1_engine_matches_plain(tmp_path_factory, seed, matchers):
    """Random page evolution + arbitrary matcher assignment ==
    from-scratch results, on both snapshots."""
    rng = random.Random(seed)
    pages0 = {f"u{i}": render_page(rng) for i in range(4)}
    pages1 = {}
    for url, text in pages0.items():
        roll = rng.random()
        if roll < 0.2:
            continue  # page removed
        pages1[url] = text if roll < 0.5 else evolve_text(rng, text)
    if rng.random() < 0.5:
        pages1["new"] = render_page(rng)
    s0 = Snapshot(0, [Page.from_url(u, t) for u, t in pages0.items()])
    s1 = Snapshot(1, [Page.from_url(u, t) for u, t in pages1.items()])

    plan, units, assignment = build_engine(matchers)
    engine = ReuseEngine(plan, units, assignment)
    base = str(tmp_path_factory.mktemp("thm1"))
    r0 = engine.run_snapshot(s0, None, None, os.path.join(base, "0"))
    r1 = engine.run_snapshot(s1, s0, os.path.join(base, "0"),
                             os.path.join(base, "1"))

    plain = NoReuseSystem(plan)
    assert canonical_results(r0) == canonical_results(plain.process(s0))
    assert canonical_results(r1) == canonical_results(plain.process(s1))


class TestEngineMechanics:
    def setup_snapshots(self):
        rng = random.Random(7)
        pages0 = {f"u{i}": render_page(rng) for i in range(5)}
        pages1 = {u: (evolve_text(rng, t) if i % 2 else t)
                  for i, (u, t) in enumerate(pages0.items())}
        s0 = Snapshot(0, [Page.from_url(u, t) for u, t in pages0.items()])
        s1 = Snapshot(1, [Page.from_url(u, t) for u, t in pages1.items()])
        return s0, s1

    def test_capture_files_created_per_unit(self, tmp_path):
        s0, _ = self.setup_snapshots()
        plan, units, assignment = build_engine(["DN"] * 3)
        engine = ReuseEngine(plan, units, assignment)
        out = str(tmp_path / "cap")
        engine.run_snapshot(s0, None, None, out)
        files = sorted(os.listdir(out))
        assert len(files) == 6  # 3 units x (I, O)
        assert any(f.endswith(".I.reuse") for f in files)

    def test_copying_happens_with_st(self, tmp_path):
        s0, s1 = self.setup_snapshots()
        plan, units, assignment = build_engine(["ST", "RU", "RU"])
        engine = ReuseEngine(plan, units, assignment)
        engine.run_snapshot(s0, None, None, str(tmp_path / "0"))
        r1 = engine.run_snapshot(s1, s0, str(tmp_path / "0"),
                                 str(tmp_path / "1"))
        copied = sum(s.copied_tuples for s in r1.unit_stats.values())
        assert copied > 0

    def test_dn_everywhere_copies_nothing(self, tmp_path):
        s0, s1 = self.setup_snapshots()
        plan, units, assignment = build_engine(["DN"] * 3)
        engine = ReuseEngine(plan, units, assignment)
        engine.run_snapshot(s0, None, None, str(tmp_path / "0"))
        r1 = engine.run_snapshot(s1, s0, str(tmp_path / "0"),
                                 str(tmp_path / "1"))
        assert all(s.copied_tuples == 0 for s in r1.unit_stats.values())

    def test_ru_without_donor_behaves_like_dn(self, tmp_path):
        s0, s1 = self.setup_snapshots()
        plan, units, assignment = build_engine(["RU", "RU", "RU"])
        engine = ReuseEngine(plan, units, assignment)
        engine.run_snapshot(s0, None, None, str(tmp_path / "0"))
        r1 = engine.run_snapshot(s1, s0, str(tmp_path / "0"),
                                 str(tmp_path / "1"))
        assert all(s.copied_tuples == 0 for s in r1.unit_stats.values())

    def test_ru_with_donor_copies(self, tmp_path):
        s0, s1 = self.setup_snapshots()
        plan, units, assignment = build_engine(["UD", "RU", "RU"])
        engine = ReuseEngine(plan, units, assignment)
        engine.run_snapshot(s0, None, None, str(tmp_path / "0"))
        r1 = engine.run_snapshot(s1, s0, str(tmp_path / "0"),
                                 str(tmp_path / "1"))
        upper = [u for u in units if u.uid != "getBody"]
        assert any(r1.unit_stats[u.uid].copied_tuples > 0 for u in upper)

    def test_identical_snapshot_fully_copied(self, tmp_path):
        s0, _ = self.setup_snapshots()
        s1 = Snapshot(1, list(s0.pages))
        plan, units, assignment = build_engine(["UD", "RU", "RU"])
        engine = ReuseEngine(plan, units, assignment)
        r0 = engine.run_snapshot(s0, None, None, str(tmp_path / "0"))
        r1 = engine.run_snapshot(s1, s0, str(tmp_path / "0"),
                                 str(tmp_path / "1"))
        assert canonical_results(r1) == canonical_results(r0)
        # Nothing should have been re-extracted on identical pages.
        for stats in r1.unit_stats.values():
            assert stats.extracted_chars == 0

    def test_unit_stats_accounting(self, tmp_path):
        s0, s1 = self.setup_snapshots()
        plan, units, assignment = build_engine(["ST", "RU", "RU"])
        engine = ReuseEngine(plan, units, assignment)
        engine.run_snapshot(s0, None, None, str(tmp_path / "0"))
        r1 = engine.run_snapshot(s1, s0, str(tmp_path / "0"),
                                 str(tmp_path / "1"))
        for stats in r1.unit_stats.values():
            assert stats.input_tuples > 0
            assert stats.i_blocks >= 1
            assert stats.o_blocks >= 1
        assert r1.pages == len(s1)
        assert r1.pages_with_previous == len(s1)

    def test_missing_assignment_rejected(self):
        plan, units, _ = build_engine(["DN"] * 3)
        with pytest.raises(ValueError):
            ReuseEngine(plan, units, PlanAssignment({}))

    def test_page_order_follows_previous_snapshot(self, tmp_path):
        s0, s1 = self.setup_snapshots()
        # Shuffle s1's pages; the engine must still process in s0 order.
        shuffled = Snapshot(1, list(reversed(s1.pages)))
        plan, units, assignment = build_engine(["ST", "RU", "RU"])
        engine = ReuseEngine(plan, units, assignment)
        r0 = engine.run_snapshot(s0, None, None, str(tmp_path / "0"))
        r1 = engine.run_snapshot(shuffled, s0, str(tmp_path / "0"),
                                 str(tmp_path / "1"))
        plain = NoReuseSystem(plan)
        assert canonical_results(r1) == canonical_results(
            plain.process(shuffled))
        copied = sum(s.copied_tuples for s in r1.unit_stats.values())
        assert copied > 0  # sequential reuse still worked


class TestAssignmentHelpers:
    def test_uniform_and_all_dn(self):
        _, units, _ = build_engine(["DN"] * 3)
        uniform = PlanAssignment.uniform(units, "ST")
        assert set(uniform.matchers.values()) == {"ST"}
        alldn = PlanAssignment.all_dn(units)
        assert set(alldn.matchers.values()) == {"DN"}

    def test_describe(self):
        _, units, assignment = build_engine(["DN", "ST", "RU"])
        text = assignment.describe()
        assert "getBody=DN" in text or "getBody" in text


class TestCorruptCapture:
    def test_corrupt_reuse_file_degrades_to_from_scratch(self, tmp_path):
        """A truncated capture (previous run died mid-write) must not
        break the next run — it just loses reuse for that unit."""
        import glob

        rng = random.Random(11)
        pages = {f"u{i}": render_page(rng) for i in range(4)}
        s0 = Snapshot(0, [Page.from_url(u, t) for u, t in pages.items()])
        s1 = Snapshot(1, list(s0.pages))
        plan, units, assignment = build_engine(["UD", "RU", "RU"])
        engine = ReuseEngine(plan, units, assignment)
        d0, d1 = str(tmp_path / "0"), str(tmp_path / "1")
        engine.run_snapshot(s0, None, None, d0)
        # Corrupt every O file: garbage line at the front.
        for path in glob.glob(os.path.join(d0, "*.O.reuse")):
            body = open(path, "rb").read()
            with open(path, "wb") as f:
                f.write(b"{not json at all\n" + body)
        r1 = engine.run_snapshot(s1, s0, d0, d1)
        expected = NoReuseSystem(plan).process(s1)
        assert canonical_results(r1) == canonical_results(expected)


def test_unknown_matcher_rejected_at_construction():
    plan, units, _ = build_engine(["DN"] * 3)
    bogus = PlanAssignment({u.uid: "NOPE" for u in units})
    with pytest.raises(ValueError, match="unknown matcher"):
        ReuseEngine(plan, units, bogus)
