"""Property tests: for random small programs and random corpus
evolutions, the delta-maintained state equals from-scratch plain
evaluation of the updated corpus — every generation, including
multiplicity-zero cancellation (duplicate pages, deletions,
resurrections)."""

from collections import namedtuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.snapshot import snapshot_from_texts
from repro.delta.maintain import DeltaMaintainer
from repro.delta.rows import freeze_rows
from repro.extractors.rules import RegexExtractor, SectionExtractor
from repro.plan.compile import compile_program
from repro.plan.operators import evaluate_plain
from repro.xlog.parser import parse_program
from repro.xlog.registry import Registry


def build_registry():
    reg = Registry()
    reg.register_extractor(RegexExtractor(
        "extractName", r"(?P<v>[A-Z][a-z]+ [A-Z][a-z]+)",
        groups={"v": "v"}, scope=40, context=2))
    reg.register_extractor(RegexExtractor(
        "extractYear", r"(?P<v>\d{4})", groups={"v": "v"},
        scope=10, context=2))
    reg.register_extractor(SectionExtractor(
        "extractBody", "v", "Body", scope=500, context=32))
    reg.register_extractor(RegexExtractor(
        "extractAmount", r"\$(?P<v>\d+)(?P<t>M)",
        groups={"t": "t"},
        scalars={"v": lambda m: int(m.group("v"))},
        scope=15, context=2))
    return reg


REGISTRY = build_registry()

#: Pool of program shapes covering every operator the delta rules
#: implement: chain (IE over IE output), join, union with a shared
#: head (multiplicity from two derivations), row-determined selects,
#: and scalar comparisons.
PROGRAM_POOL = (
    "names(v) :- docs(d), extractName(d, v).",
    """
    names(v) :- docs(d), extractBody(d, b), extractName(b, v).
    """,
    """
    pairs(n, y) :- docs(d), extractName(d, n), extractYear(d, y),
                   before(n, y).
    """,
    """
    found(v) :- docs(d), extractName(d, v).
    found(v) :- docs(d), extractYear(d, v).
    """,
    """
    rich(t) :- docs(d), extractAmount(d, t, v), atLeast(v, 100).
    names(v) :- docs(d), extractBody(d, b), extractName(b, v).
    """,
)

PLANS = tuple(compile_program(parse_program(src), REGISTRY)
              for src in PROGRAM_POOL)

#: Vocabulary chosen so random lines hit (and miss) every extractor.
TOKENS = ("Alice Chen", "Karen Xu", "Bob", "1999", "2001", "$120M",
          "$7M", "== Body ==", "intro", "review of")

URLS = ("a", "b", "c", "d")

lines = st.lists(st.sampled_from(TOKENS), min_size=0, max_size=6)
texts = lines.map(lambda ls: " ".join(ls) + "\n")
corpora = st.dictionaries(st.sampled_from(URLS), texts,
                          min_size=0, max_size=len(URLS))
series_strategy = st.lists(corpora, min_size=1, max_size=5)


Diff = namedtuple("Diff", "changed new deleted unchanged resurrected")


def diff_texts(prev, cur, tombstones):
    return Diff(
        changed=tuple(d for d in cur if d in prev and prev[d] != cur[d]),
        new=tuple(d for d in cur if d not in prev),
        deleted=tuple(sorted(d for d in prev if d not in cur)),
        unchanged=tuple(d for d in cur if d in prev and prev[d] == cur[d]),
        resurrected=tuple(d for d in cur
                          if d not in prev and d in tombstones))


def batch_state(plan, pages):
    """From-scratch ground truth for one corpus: the sorted relation
    index and the per-page row sets the maintainer must match."""
    per_page = {}
    union = {rel: set() for rel in plan.program.head_relations()}
    for did, text in pages.items():
        memo = {}
        rows = {rel: set(freeze_rows(
                    evaluate_plain(plan.roots[rel], text, did, memo),
                    text))
                for rel in union}
        per_page[did] = rows
        for rel in union:
            union[rel] |= rows[rel]
    index = {rel: tuple(sorted(want, key=repr))
             for rel, want in union.items()}
    return per_page, index


def drive(plan, series):
    maintainer = DeltaMaintainer(plan)
    prev = {}
    tombstones = set()
    for i, corpus in enumerate(series):
        snap = snapshot_from_texts(i, corpus)
        cur = {p.did: p.text for p in snap.canonical_pages()}
        diff = diff_texts(prev, cur, tombstones)
        maintainer.apply(snap, diff, check=True)
        tombstones |= set(diff.deleted)
        tombstones -= set(diff.resurrected)
        prev = cur

        per_page, index = batch_state(plan, cur)
        assert set(maintainer.states) == set(cur)
        for did, want_rows in per_page.items():
            got = maintainer.plan_delta.page_rows(maintainer.states[did])
            for rel, want in want_rows.items():
                assert set(got[rel]) == want, (i, did, rel)
        for rel, want in index.items():
            assert maintainer.index.get(rel, ()) == want, (i, rel)


class TestDeltaEqualsBatch:
    @settings(max_examples=25, deadline=None)
    @given(plan_i=st.integers(0, len(PLANS) - 1), series=series_strategy)
    def test_random_series_matches_plain_evaluation(self, plan_i, series):
        drive(PLANS[plan_i], series)

    @settings(max_examples=15, deadline=None)
    @given(text=texts, other=texts,
           plan_i=st.integers(0, len(PLANS) - 1))
    def test_churn_cycle_and_duplicate_pages(self, text, other, plan_i):
        """Forced worst-case multiplicity script: two pages sharing
        one text (their canonical tuples coincide → counts must add),
        then deletion, then resurrection of the same bytes."""
        series = [
            {"a": text, "b": text, "c": other},
            {"a": text, "c": other},       # b deleted; a still holds rows
            {"c": other},                  # a deleted; shared rows vanish
            {"a": text, "b": text},        # both resurrect, c deleted
        ]
        drive(PLANS[plan_i], series)
