"""Corpus generators and the evolution model."""

import random

import pytest

from repro.corpus.evolve import ChangeModel, EvolvingCorpus, dblife_corpus, wikipedia_corpus
from repro.corpus.generators import DBLifeGenerator, WikipediaGenerator
from repro.corpus.stats import profile_corpus, snapshot_delta


class TestChangeModel:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            ChangeModel(p_unchanged=1.5)

    def test_rejects_edit_mix_over_one(self):
        with pytest.raises(ValueError):
            ChangeModel(p_insert=0.8, p_delete=0.5)


class TestGenerators:
    def test_dblife_page_structure(self):
        rng = random.Random(0)
        gen = DBLifeGenerator()
        page = gen.new_page(rng, "http://x/1")
        text = page.text()
        assert "== Service ==" in text
        assert "== Advising ==" in text
        assert any("advises" in line for line in page.lines)

    def test_wikipedia_actor_page(self):
        rng = random.Random(1)
        gen = WikipediaGenerator()
        for _ in range(20):
            page = gen.new_page(rng, "http://x/1")
            if page.kind == "actor":
                text = page.text()
                assert "Born " in text
                assert "== Filmography ==" in text
                return
        pytest.fail("no actor page generated in 20 tries")

    def test_new_line_kinds(self):
        rng = random.Random(2)
        gen = WikipediaGenerator()
        lines = {gen.new_line(rng, "actor") for _ in range(60)}
        assert any("starred as" in l for l in lines)
        assert any("grossed $" in l for l in lines)

    def test_modify_line_bumps_numbers(self):
        rng = random.Random(3)
        gen = DBLifeGenerator()
        line = "Alice Chen serves as program chair of SIGMOD 2008."
        seen = {gen.modify_line(rng, "homepage", line) for _ in range(30)}
        assert any("SIGMOD 20" in l and "2008" not in l for l in seen)


class TestEvolvingCorpus:
    def test_deterministic(self):
        a = [s.get(u).digest
             for s in dblife_corpus(n_pages=10, seed=5).snapshots(3)
             for u in s.urls()]
        b = [s.get(u).digest
             for s in dblife_corpus(n_pages=10, seed=5).snapshots(3)
             for u in s.urls()]
        assert a == b

    def test_seed_changes_output(self):
        a = list(dblife_corpus(n_pages=10, seed=1).snapshots(2))
        b = list(dblife_corpus(n_pages=10, seed=2).snapshots(2))
        assert [p.digest for p in a[0]] != [p.digest for p in b[0]]

    def test_snapshot_indexes_increment(self):
        snaps = list(wikipedia_corpus(n_pages=5, seed=0).snapshots(4))
        assert [s.index for s in snaps] == [0, 1, 2, 3]

    def test_rejects_zero_pages(self):
        with pytest.raises(ValueError):
            EvolvingCorpus(DBLifeGenerator(), 0, ChangeModel())

    def test_unchanged_probability_one_freezes_corpus(self):
        model = ChangeModel(p_unchanged=1.0, p_removed=0.0, p_added=0.0)
        corpus = EvolvingCorpus(DBLifeGenerator(), 8, model, seed=3)
        s0, s1 = list(corpus.snapshots(2))
        assert snapshot_delta(s0, s1).fraction_identical == 1.0

    def test_unchanged_probability_zero_changes_everything(self):
        model = ChangeModel(p_unchanged=0.0, p_removed=0.0, p_added=0.0,
                            mean_edits=2.0)
        corpus = EvolvingCorpus(WikipediaGenerator(), 8, model, seed=3)
        s0, s1 = list(corpus.snapshots(2))
        assert snapshot_delta(s0, s1).fraction_identical < 0.3

    def test_page_addition_and_removal(self):
        model = ChangeModel(p_unchanged=1.0, p_removed=0.5, p_added=0.5)
        corpus = EvolvingCorpus(DBLifeGenerator(), 20, model, seed=7)
        s0, s1 = list(corpus.snapshots(2))
        delta = snapshot_delta(s0, s1)
        assert delta.shared_urls < len(s0)
        assert len(s1) != delta.shared_urls  # new URLs appeared


class TestPresets:
    def test_dblife_mostly_identical(self):
        snaps = list(dblife_corpus(n_pages=60, seed=9).snapshots(4))
        profile = profile_corpus(snaps)
        assert profile.avg_fraction_identical > 0.88

    def test_wikipedia_mostly_changed(self):
        snaps = list(wikipedia_corpus(n_pages=60, seed=9).snapshots(4))
        profile = profile_corpus(snaps)
        assert profile.avg_fraction_identical < 0.35
        # ...but URLs persist: reuse candidates exist.
        assert profile.avg_fraction_with_previous > 0.9


class TestStats:
    def test_snapshot_delta_counts(self):
        from repro.corpus.snapshot import snapshot_from_texts
        prev = snapshot_from_texts(0, {"a": "1", "b": "2", "c": "3"})
        nxt = snapshot_from_texts(1, {"a": "1", "b": "x", "d": "4"})
        delta = snapshot_delta(prev, nxt)
        assert delta.shared_urls == 2
        assert delta.identical_pages == 1
        assert delta.fraction_with_previous == pytest.approx(2 / 3)
        assert delta.fraction_identical == pytest.approx(1 / 3)

    def test_profile_requires_snapshots(self):
        with pytest.raises(ValueError):
            profile_corpus([])


class TestRenameChurn:
    def test_renamed_pages_keep_content(self):
        from repro.corpus.evolve import ChangeModel, EvolvingCorpus
        from repro.corpus.generators import WikipediaGenerator

        model = ChangeModel(p_unchanged=1.0, p_removed=0.0, p_added=0.0,
                            p_renamed=1.0)
        corpus = EvolvingCorpus(WikipediaGenerator(), 6, model, seed=4)
        s0, s1 = list(corpus.snapshots(2))
        # Every URL changed...
        assert not set(s0.urls()) & set(s1.urls())
        # ...but the content set is identical.
        assert sorted(p.digest for p in s0) == sorted(p.digest for p in s1)

    def test_partial_rename_rate(self):
        from repro.corpus.evolve import ChangeModel, EvolvingCorpus
        from repro.corpus.generators import WikipediaGenerator

        model = ChangeModel(p_unchanged=1.0, p_removed=0.0, p_added=0.0,
                            p_renamed=0.3)
        corpus = EvolvingCorpus(WikipediaGenerator(), 40, model, seed=4)
        s0, s1 = list(corpus.snapshots(2))
        shared = len(set(s0.urls()) & set(s1.urls()))
        assert 10 < shared < 40
