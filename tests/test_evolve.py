"""Corpus generators and the evolution model."""

import random

import pytest

from repro.corpus.evolve import ChangeModel, EvolvingCorpus, dblife_corpus, wikipedia_corpus
from repro.corpus.generators import DBLifeGenerator, WikipediaGenerator
from repro.corpus.stats import profile_corpus, snapshot_delta


class TestChangeModel:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            ChangeModel(p_unchanged=1.5)

    def test_rejects_edit_mix_over_one(self):
        with pytest.raises(ValueError):
            ChangeModel(p_insert=0.8, p_delete=0.5)


class TestGenerators:
    def test_dblife_page_structure(self):
        rng = random.Random(0)
        gen = DBLifeGenerator()
        page = gen.new_page(rng, "http://x/1")
        text = page.text()
        assert "== Service ==" in text
        assert "== Advising ==" in text
        assert any("advises" in line for line in page.lines)

    def test_wikipedia_actor_page(self):
        rng = random.Random(1)
        gen = WikipediaGenerator()
        for _ in range(20):
            page = gen.new_page(rng, "http://x/1")
            if page.kind == "actor":
                text = page.text()
                assert "Born " in text
                assert "== Filmography ==" in text
                return
        pytest.fail("no actor page generated in 20 tries")

    def test_new_line_kinds(self):
        rng = random.Random(2)
        gen = WikipediaGenerator()
        lines = {gen.new_line(rng, "actor") for _ in range(60)}
        assert any("starred as" in l for l in lines)
        assert any("grossed $" in l for l in lines)

    def test_modify_line_bumps_numbers(self):
        rng = random.Random(3)
        gen = DBLifeGenerator()
        line = "Alice Chen serves as program chair of SIGMOD 2008."
        seen = {gen.modify_line(rng, "homepage", line) for _ in range(30)}
        assert any("SIGMOD 20" in l and "2008" not in l for l in seen)


class TestEvolvingCorpus:
    def test_deterministic(self):
        a = [s.get(u).digest
             for s in dblife_corpus(n_pages=10, seed=5).snapshots(3)
             for u in s.urls()]
        b = [s.get(u).digest
             for s in dblife_corpus(n_pages=10, seed=5).snapshots(3)
             for u in s.urls()]
        assert a == b

    def test_seed_changes_output(self):
        a = list(dblife_corpus(n_pages=10, seed=1).snapshots(2))
        b = list(dblife_corpus(n_pages=10, seed=2).snapshots(2))
        assert [p.digest for p in a[0]] != [p.digest for p in b[0]]

    def test_snapshot_indexes_increment(self):
        snaps = list(wikipedia_corpus(n_pages=5, seed=0).snapshots(4))
        assert [s.index for s in snaps] == [0, 1, 2, 3]

    def test_rejects_zero_pages(self):
        with pytest.raises(ValueError):
            EvolvingCorpus(DBLifeGenerator(), 0, ChangeModel())

    def test_unchanged_probability_one_freezes_corpus(self):
        model = ChangeModel(p_unchanged=1.0, p_removed=0.0, p_added=0.0)
        corpus = EvolvingCorpus(DBLifeGenerator(), 8, model, seed=3)
        s0, s1 = list(corpus.snapshots(2))
        assert snapshot_delta(s0, s1).fraction_identical == 1.0

    def test_unchanged_probability_zero_changes_everything(self):
        model = ChangeModel(p_unchanged=0.0, p_removed=0.0, p_added=0.0,
                            mean_edits=2.0)
        corpus = EvolvingCorpus(WikipediaGenerator(), 8, model, seed=3)
        s0, s1 = list(corpus.snapshots(2))
        assert snapshot_delta(s0, s1).fraction_identical < 0.3

    def test_page_addition_and_removal(self):
        model = ChangeModel(p_unchanged=1.0, p_removed=0.5, p_added=0.5)
        corpus = EvolvingCorpus(DBLifeGenerator(), 20, model, seed=7)
        s0, s1 = list(corpus.snapshots(2))
        delta = snapshot_delta(s0, s1)
        assert delta.shared_urls < len(s0)
        assert len(s1) != delta.shared_urls  # new URLs appeared


class TestPresets:
    def test_dblife_mostly_identical(self):
        snaps = list(dblife_corpus(n_pages=60, seed=9).snapshots(4))
        profile = profile_corpus(snaps)
        assert profile.avg_fraction_identical > 0.88

    def test_wikipedia_mostly_changed(self):
        snaps = list(wikipedia_corpus(n_pages=60, seed=9).snapshots(4))
        profile = profile_corpus(snaps)
        assert profile.avg_fraction_identical < 0.35
        # ...but URLs persist: reuse candidates exist.
        assert profile.avg_fraction_with_previous > 0.9


class TestStats:
    def test_snapshot_delta_counts(self):
        from repro.corpus.snapshot import snapshot_from_texts
        prev = snapshot_from_texts(0, {"a": "1", "b": "2", "c": "3"})
        nxt = snapshot_from_texts(1, {"a": "1", "b": "x", "d": "4"})
        delta = snapshot_delta(prev, nxt)
        assert delta.shared_urls == 2
        assert delta.identical_pages == 1
        assert delta.fraction_with_previous == pytest.approx(2 / 3)
        assert delta.fraction_identical == pytest.approx(1 / 3)

    def test_profile_requires_snapshots(self):
        with pytest.raises(ValueError):
            profile_corpus([])


class TestRenameChurn:
    def test_renamed_pages_keep_content(self):
        from repro.corpus.evolve import ChangeModel, EvolvingCorpus
        from repro.corpus.generators import WikipediaGenerator

        model = ChangeModel(p_unchanged=1.0, p_removed=0.0, p_added=0.0,
                            p_renamed=1.0)
        corpus = EvolvingCorpus(WikipediaGenerator(), 6, model, seed=4)
        s0, s1 = list(corpus.snapshots(2))
        # Every URL changed...
        assert not set(s0.urls()) & set(s1.urls())
        # ...but the content set is identical.
        assert sorted(p.digest for p in s0) == sorted(p.digest for p in s1)

    def test_partial_rename_rate(self):
        from repro.corpus.evolve import ChangeModel, EvolvingCorpus
        from repro.corpus.generators import WikipediaGenerator

        model = ChangeModel(p_unchanged=1.0, p_removed=0.0, p_added=0.0,
                            p_renamed=0.3)
        corpus = EvolvingCorpus(WikipediaGenerator(), 40, model, seed=4)
        s0, s1 = list(corpus.snapshots(2))
        shared = len(set(s0.urls()) & set(s1.urls()))
        assert 10 < shared < 40


class TestDeterminism:
    """Same seed, same snapshot bytes — and no global random usage.

    Every random draw in the corpus layer flows through an injected
    ``random.Random`` (the generators and vocab take ``rng``
    parameters; the evolver owns a private instance). These tests pin
    that contract: identical seeds serialize to identical bytes, the
    global :mod:`random` state is never consulted or advanced, and an
    explicitly injected rng drives the stream.
    """

    @staticmethod
    def _series_bytes(corpus, count, tmp_path, tag):
        from repro.corpus.snapshot import write_snapshot

        blobs = []
        for i, snapshot in enumerate(corpus.snapshots(count)):
            path = str(tmp_path / f"{tag}_{i}.snap")
            write_snapshot(snapshot, path)
            with open(path, "rb") as fh:
                blobs.append(fh.read())
        return blobs

    def test_same_seed_identical_snapshot_bytes(self, tmp_path):
        for factory in (dblife_corpus, wikipedia_corpus):
            a = self._series_bytes(factory(n_pages=10, seed=7), 3,
                                   tmp_path, "a")
            b = self._series_bytes(factory(n_pages=10, seed=7), 3,
                                   tmp_path, "b")
            assert a == b

    def test_global_random_state_untouched(self):
        random.seed(12345)
        before = random.getstate()
        list(wikipedia_corpus(n_pages=8, seed=1).snapshots(3))
        assert random.getstate() == before

    def test_interleaved_global_draws_do_not_change_output(self):
        def texts(noise):
            corpus = dblife_corpus(n_pages=6, seed=9)
            out = []
            for snapshot in corpus.snapshots(3):
                if noise:
                    random.random()  # global draws between snapshots
                out.append([(p.url, p.text) for p in snapshot])
            return out

        assert texts(noise=False) == texts(noise=True)

    def test_injected_rng_drives_the_stream(self):
        model = ChangeModel(p_unchanged=0.5)
        make = lambda rng: EvolvingCorpus(  # noqa: E731
            WikipediaGenerator(), 6, model, rng=rng)
        a = [[(p.url, p.text) for p in s]
             for s in make(random.Random(3)).snapshots(3)]
        b = [[(p.url, p.text) for p in s]
             for s in make(random.Random(3)).snapshots(3)]
        c = [[(p.url, p.text) for p in s]
             for s in make(random.Random(4)).snapshots(3)]
        assert a == b
        assert a != c
