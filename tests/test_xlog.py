"""xlog parser, AST, registry, and validation tests."""

import pytest

from repro.extractors.rules import RegexExtractor
from repro.xlog.ast import Atom, Var
from repro.xlog.parser import XlogSyntaxError, parse_program, parse_rule
from repro.xlog.registry import EvalContext, Registry
from repro.xlog.validation import XlogValidationError, validate_program
from repro.text.span import Span


def name_extractor():
    return RegexExtractor("extractName", r"(?P<v>[A-Z][a-z]+)",
                          groups={"v": "v"}, scope=30, context=2)


def title_extractor():
    return RegexExtractor("extractTitle", r'"(?P<t>[^"]+)"',
                          groups={"t": "t"}, scope=80, context=2)


@pytest.fixture
def registry():
    reg = Registry()
    reg.register_extractor(name_extractor())
    reg.register_extractor(title_extractor())
    return reg


class TestParser:
    def test_single_rule(self):
        rule = parse_rule("out(x) :- docs(d), extractName(d, x).")
        assert rule.head.pred == "out"
        assert [a.pred for a in rule.body] == ["docs", "extractName"]
        assert rule.head.args == (Var("x"),)

    def test_literals(self):
        rule = parse_rule(
            'out(x) :- docs(d), extractName(d, x), atLeast(x, 100), '
            'containsPhrase(x, "relevance feedback").')
        assert rule.body[2].args[1] == 100
        assert rule.body[3].args[1] == "relevance feedback"

    def test_float_and_negative(self):
        rule = parse_rule("out(x) :- docs(d), f(x, -1.5).")
        assert rule.body[1].args[1] == -1.5

    def test_comments_and_whitespace(self):
        program = parse_program("""
            % rule one
            a(x) :- docs(d), extractName(d, x).
            # rule two
            b(x) :- docs(d), extractTitle(d, x).
        """)
        assert len(program.rules) == 2
        assert program.head_relations() == ["a", "b"]

    def test_multiline_rule(self):
        rule = parse_rule("""out(x, y) :- docs(d),
            extractName(d, x),
            extractTitle(d, y).""")
        assert len(rule.body) == 3

    def test_syntax_error_reports_line(self):
        with pytest.raises(XlogSyntaxError) as err:
            parse_program("a(x) :- docs(d)\nb(y) :- docs(d).")
        assert "line" in str(err.value)

    def test_rejects_empty_program(self):
        with pytest.raises(XlogSyntaxError):
            parse_program("   % nothing here\n")

    def test_rejects_trailing_garbage_in_rule(self):
        with pytest.raises(XlogSyntaxError):
            parse_rule("a(x) :- docs(d). extra")

    def test_rejects_unknown_character(self):
        with pytest.raises(XlogSyntaxError):
            parse_program("a(x) :- docs(d) & b(x).")

    def test_roundtrip_str(self):
        text = 'talks(t) :- docs(d), extractTitle(d, t).'
        rule = parse_rule(text)
        assert parse_rule(str(rule)) == rule


class TestRegistry:
    def test_kind_of(self, registry):
        assert registry.kind_of("docs") == "docs"
        assert registry.kind_of("extractName") == "ie"
        assert registry.kind_of("immBefore") == "function"
        assert registry.kind_of("nonsense") is None

    def test_rejects_duplicate_registration(self, registry):
        with pytest.raises(ValueError):
            registry.register_extractor(name_extractor())
        with pytest.raises(ValueError):
            registry.register_function("extractName", lambda ctx: True, 1)

    def test_builtin_imm_before(self):
        ctx = EvalContext("hello  world", "d")
        from repro.xlog.registry import imm_before
        assert imm_before(ctx, Span("d", 0, 5), Span("d", 7, 12))
        assert not imm_before(ctx, Span("d", 7, 12), Span("d", 0, 5))

    def test_builtin_imm_before_rejects_text_between(self):
        ctx = EvalContext("hello X world", "d")
        from repro.xlog.registry import imm_before
        assert not imm_before(ctx, Span("d", 0, 5), Span("d", 8, 13))

    def test_builtin_within_chars(self):
        from repro.xlog.registry import within_chars
        ctx = EvalContext("x" * 50, "d")
        assert within_chars(ctx, Span("d", 0, 5), Span("d", 10, 15), 20)
        assert not within_chars(ctx, Span("d", 0, 5), Span("d", 40, 45), 20)

    def test_builtin_contains_phrase(self):
        from repro.xlog.registry import contains_phrase
        ctx = EvalContext("About Relevance Feedback methods", "d")
        assert contains_phrase(ctx, Span("d", 0, 33), "relevance feedback")
        assert not contains_phrase(ctx, Span("d", 0, 5), "feedback")

    def test_builtin_gross_over(self):
        from repro.xlog.registry import gross_over
        ctx = EvalContext("It grossed $120 million worldwide.", "d")
        assert gross_over(ctx, Span("d", 0, 34), 100)
        assert not gross_over(ctx, Span("d", 0, 34), 200)

    def test_builtin_at_least(self):
        from repro.xlog.registry import at_least
        assert at_least(None, 120, 100)
        assert not at_least(None, 80, 100)

    def test_builtin_all_caps(self):
        from repro.xlog.registry import all_caps
        ctx = EvalContext("HELLO world", "d")
        assert all_caps(ctx, Span("d", 0, 5))
        assert not all_caps(ctx, Span("d", 6, 11))

    def test_builtin_year_after(self):
        from repro.xlog.registry import year_after
        ctx = EvalContext("released in 1994.", "d")
        assert year_after(ctx, Span("d", 0, 17), 1990)
        assert not year_after(ctx, Span("d", 0, 17), 2000)


class TestValidation:
    def check(self, source, registry):
        validate_program(parse_program(source), registry)

    def test_valid_program(self, registry):
        self.check("out(x) :- docs(d), extractName(d, x).", registry)

    def test_unknown_predicate(self, registry):
        with pytest.raises(XlogValidationError, match="unknown"):
            self.check("out(x) :- docs(d), mystery(d, x).", registry)

    def test_unbound_ie_input(self, registry):
        with pytest.raises(XlogValidationError, match="not bound"):
            self.check("out(x) :- extractName(d, x), docs(d).", registry)

    def test_wrong_ie_arity(self, registry):
        with pytest.raises(XlogValidationError, match="argument"):
            self.check("out(x) :- docs(d), extractName(d, x, y).", registry)

    def test_rebinding_ie_output(self, registry):
        with pytest.raises(XlogValidationError, match="already bound"):
            self.check(
                "out(x) :- docs(d), extractName(d, x), extractTitle(d, x).",
                registry)

    def test_unbound_function_arg(self, registry):
        with pytest.raises(XlogValidationError, match="not bound"):
            self.check("out(x) :- docs(d), extractName(d, x), "
                       "immBefore(x, y).", registry)

    def test_wrong_function_arity(self, registry):
        with pytest.raises(XlogValidationError, match="takes"):
            self.check("out(x) :- docs(d), extractName(d, x), "
                       "immBefore(x).", registry)

    def test_unsafe_head(self, registry):
        with pytest.raises(XlogValidationError, match="head variables"):
            self.check("out(x, z) :- docs(d), extractName(d, x).", registry)

    def test_recursion_rejected(self, registry):
        with pytest.raises(XlogValidationError):
            self.check("out(x) :- out(x), docs(d).", registry)

    def test_docs_arity(self, registry):
        with pytest.raises(XlogValidationError, match="docs"):
            self.check("out(d) :- docs(d, e).", registry)

    def test_head_shadowing_builtin(self, registry):
        with pytest.raises(XlogValidationError, match="shadows"):
            self.check("immBefore(x, x) :- docs(d), extractName(d, x).",
                       registry)

    def test_rule_chaining_allowed(self, registry):
        self.check("""
            names(x) :- docs(d), extractName(d, x).
            out(x) :- names(x).
        """, registry)

    def test_chained_arity_mismatch(self, registry):
        with pytest.raises(XlogValidationError, match="arity"):
            self.check("""
                names(x) :- docs(d), extractName(d, x).
                out(x) :- names(x, y).
            """, registry)
