"""Command-line interface tests."""

import pytest

from repro.cli import main


class TestTasks:
    def test_lists_all_tasks(self, capsys):
        assert main(["tasks"]) == 0
        out = capsys.readouterr().out
        for name in ("talk", "chair", "advise", "blockbuster", "play",
                     "award", "infobox"):
            assert name in out


class TestInspect:
    def test_shows_program_units_chains(self, capsys):
        assert main(["inspect", "--task", "chair"]) == 0
        out = capsys.readouterr().out
        assert "xlog program" in out
        assert "extractServiceSec" in out
        assert "IEChain" in out

    def test_rejects_unknown_task(self, capsys):
        with pytest.raises(SystemExit):
            main(["inspect", "--task", "bogus"])


class TestCorpus:
    def test_generates_store(self, tmp_path, capsys):
        store = str(tmp_path / "c")
        code = main(["corpus", "--kind", "dblife", "--pages", "6",
                     "--snapshots", "3", "--store", store])
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote 3 snapshots" in out
        from repro.corpus import CorpusStore
        assert len(CorpusStore(store)) == 3

    def test_refuses_nonempty_store(self, tmp_path, capsys):
        store = str(tmp_path / "c")
        main(["corpus", "--kind", "dblife", "--pages", "4",
              "--snapshots", "2", "--store", store])
        capsys.readouterr()
        assert main(["corpus", "--kind", "dblife", "--pages", "4",
                     "--snapshots", "2", "--store", store]) == 2


class TestRun:
    def test_end_to_end(self, tmp_path, capsys):
        store = str(tmp_path / "c")
        main(["corpus", "--kind", "wikipedia", "--pages", "8",
              "--snapshots", "3", "--store", store])
        capsys.readouterr()
        code = main(["run", "--task", "play", "--store", store,
                     "--systems", "noreuse,delex",
                     "--work-scale", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "result agreement: OK" in out
        assert "mean decomposition" in out

    def test_requires_snapshots(self, tmp_path, capsys):
        store = str(tmp_path / "empty")
        assert main(["run", "--task", "play", "--store", store]) == 2

    def test_rejects_unknown_system(self, tmp_path, capsys):
        store = str(tmp_path / "c")
        main(["corpus", "--kind", "wikipedia", "--pages", "4",
              "--snapshots", "2", "--store", store])
        capsys.readouterr()
        assert main(["run", "--task", "play", "--store", store,
                     "--systems", "magic"]) == 2


class TestReport:
    def test_aggregates_tables(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig10_demo.txt").write_text("demo table\nrow 1\n")
        assert main(["report", "--results", str(results)]) == 0
        out = capsys.readouterr().out
        assert "fig10_demo.txt" in out
        assert "row 1" in out

    def test_missing_directory(self, tmp_path, capsys):
        assert main(["report", "--results",
                     str(tmp_path / "nope")]) == 2

    def test_empty_directory(self, tmp_path, capsys):
        empty = tmp_path / "results"
        empty.mkdir()
        assert main(["report", "--results", str(empty)]) == 2
