"""MatchSegment and disjoint-selection tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.regions import MatchSegment, select_p_disjoint
from repro.text.span import Interval


class TestMatchSegment:
    def test_intervals_and_shift(self):
        seg = MatchSegment(10, 4, 6)
        assert seg.p_interval == Interval(10, 16)
        assert seg.q_interval == Interval(4, 10)
        assert seg.shift == 6

    def test_verify(self):
        p = "xxhello worldxx"
        q = "hello world"
        seg = MatchSegment(2, 0, 11)
        assert seg.verify(p, q)
        assert not MatchSegment(0, 0, 5).verify(p, q)

    def test_trim_to_p(self):
        seg = MatchSegment(10, 0, 10)
        trimmed = seg.trim_to_p(Interval(12, 16))
        assert trimmed == MatchSegment(12, 2, 4)

    def test_trim_to_p_disjoint(self):
        assert MatchSegment(0, 0, 5).trim_to_p(Interval(10, 20)) is None

    def test_trim_to_q(self):
        seg = MatchSegment(10, 0, 10)
        trimmed = seg.trim_to_q(Interval(3, 7))
        assert trimmed == MatchSegment(13, 3, 4)

    def test_trims_keep_correspondence(self):
        p = "aaaa0123456789bbbb"
        q = "0123456789"
        seg = MatchSegment(4, 0, 10)
        t = seg.trim_to_p(Interval(6, 12)).trim_to_q(Interval(3, 8))
        assert t.verify(p, q)

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            MatchSegment(0, 0, -1)


segments = st.builds(
    MatchSegment,
    st.integers(0, 200), st.integers(0, 200), st.integers(0, 60))


class TestSelectPDisjoint:
    def test_keeps_disjoint(self):
        segs = [MatchSegment(0, 0, 5), MatchSegment(10, 10, 5)]
        assert select_p_disjoint(segs) == segs

    def test_prefers_long(self):
        segs = [MatchSegment(0, 0, 3), MatchSegment(1, 10, 20)]
        got = select_p_disjoint(segs)
        assert got[0].p_start == 1 or any(s.length == 20 for s in got)

    def test_trims_overlaps(self):
        segs = [MatchSegment(0, 0, 10), MatchSegment(5, 50, 10)]
        got = select_p_disjoint(segs)
        # All results disjoint on the p side.
        for a, b in zip(got, got[1:]):
            assert a.p_start + a.length <= b.p_start

    def test_drops_empty(self):
        assert select_p_disjoint([MatchSegment(0, 0, 0)]) == []

    @given(st.lists(segments, max_size=15))
    def test_result_p_disjoint_and_sorted(self, segs):
        got = select_p_disjoint(segs)
        for a, b in zip(got, got[1:]):
            assert a.p_start + a.length <= b.p_start

    @given(st.lists(segments, max_size=15))
    def test_results_are_subsegments(self, segs):
        got = select_p_disjoint(segs)
        for out in got:
            assert any(
                s.p_start <= out.p_start
                and out.p_start + out.length <= s.p_start + s.length
                and out.p_start - s.p_start == out.q_start - s.q_start
                for s in segs)

    @given(st.lists(segments, max_size=15))
    def test_shift_preserved(self, segs):
        """Trimmed pieces keep their source's p/q correspondence."""
        shifts = {s.shift for s in segs}
        for out in select_p_disjoint(segs):
            assert out.shift in shifts
