"""Plan operators, compiler, CSE, unit identification, chains."""

import pytest

from repro.extractors.rules import RegexExtractor, SectionExtractor
from repro.plan.compile import CompileError, compile_program
from repro.plan.operators import (
    IENode,
    JoinNode,
    ProjectNode,
    ScanNode,
    SelectNode,
    dedupe_rows,
    evaluate_plain,
    hash_join,
)
from repro.plan.units import find_units, partition_chains, producer_unit
from repro.text.span import Span
from repro.xlog.parser import parse_program
from repro.xlog.registry import Registry


def build_registry():
    reg = Registry()
    reg.register_extractor(RegexExtractor(
        "extractName", r"(?P<v>[A-Z][a-z]+ [A-Z][a-z]+)",
        groups={"v": "v"}, scope=40, context=2))
    reg.register_extractor(RegexExtractor(
        "extractYear", r"(?P<v>\d{4})", groups={"v": "v"},
        scope=10, context=2))
    reg.register_extractor(SectionExtractor(
        "extractBody", "v", "Body", scope=500, context=32))
    reg.register_extractor(RegexExtractor(
        "extractAmount", r"\$(?P<v>\d+)(?P<t>M)",
        groups={"t": "t"},
        scalars={"v": lambda m: int(m.group("v"))},
        scope=15, context=2))
    return reg


def compile_src(src):
    reg = build_registry()
    return compile_program(parse_program(src), reg)


PAGE = ("intro Alice Chen in 1999\n"
        "== Body ==\n"
        "Karen Xu spent $120M in 2001\n")


def run(plan, text=PAGE):
    memo = {}
    return {rel: evaluate_plain(plan.roots[rel], text, "d0", memo)
            for rel in plan.program.head_relations()}


class TestOperators:
    def test_hash_join_on_shared(self):
        left = [{"a": 1, "b": 2}, {"a": 2, "b": 3}]
        right = [{"a": 1, "c": 9}]
        got = hash_join(left, right, ["a"])
        assert got == [{"a": 1, "b": 2, "c": 9}]

    def test_hash_join_cartesian(self):
        got = hash_join([{"a": 1}], [{"b": 2}, {"b": 3}], [])
        assert len(got) == 2

    def test_dedupe_rows(self):
        rows = [{"a": 1}, {"a": 1}, {"a": 2}]
        assert dedupe_rows(rows) == [{"a": 1}, {"a": 2}]

    def test_dedupe_rows_order_independent(self):
        # Regression: dedupe historically kept first-seen order, so a
        # reordered input (e.g. a delta-maintained operator emitting
        # rows in a different order) reordered everything downstream.
        rows = [{"a": 2}, {"a": 1, "b": 0}, {"a": 1}, {"a": 3}]
        shuffled = [rows[2], rows[3], rows[0], rows[1], rows[0]]
        assert dedupe_rows(rows) == dedupe_rows(shuffled)

    def test_dedupe_rows_canonical_with_spans(self):
        rows = [{"v": Span("d0", 9, 12)}, {"v": Span("d0", 1, 4)}]
        assert dedupe_rows(rows) == dedupe_rows(list(reversed(rows)))

    def test_hash_join_order_independent(self):
        # Same regression for joins: output must not depend on either
        # input's ordering (documented tie-break: sort by the repr of
        # each row's sorted (var, value) pairs — injective on distinct
        # rows, so there are no ties).
        left = [{"a": 1, "b": 2}, {"a": 1, "b": 3}, {"a": 2, "b": 1}]
        right = [{"a": 1, "c": 9}, {"a": 1, "c": 8}, {"a": 2, "c": 7}]
        want = hash_join(left, right, ["a"])
        assert hash_join(list(reversed(left)), right, ["a"]) == want
        assert hash_join(left, list(reversed(right)), ["a"]) == want
        assert len(want) == 5

    def test_hash_join_preserves_duplicate_multiplicity(self):
        left = [{"a": 1}, {"a": 1}]
        got = hash_join(left, [{"a": 1, "c": 2}], ["a"])
        assert got == [{"a": 1, "c": 2}, {"a": 1, "c": 2}]

    def test_signature_stable_and_distinct(self):
        scan = ScanNode("d")
        assert scan.signature == ScanNode("d").signature
        assert scan.signature != ScanNode("x").signature

    def test_project_rejects_missing_source(self):
        with pytest.raises(ValueError):
            ProjectNode(ScanNode("d"), [("out", "missing")])


class TestEvaluation:
    def test_simple_extraction(self):
        plan = compile_src("names(v) :- docs(d), extractName(d, v).")
        rows = run(plan)["names"]
        texts = {PAGE[r["v"].start:r["v"].end] for r in rows}
        assert texts == {"Alice Chen", "Karen Xu"}

    def test_chained_extraction_restricted_to_section(self):
        plan = compile_src(
            "names(v) :- docs(d), extractBody(d, b), extractName(b, v).")
        rows = run(plan)["names"]
        texts = {PAGE[r["v"].start:r["v"].end] for r in rows}
        assert texts == {"Karen Xu"}

    def test_select_pushed_and_applied(self):
        plan = compile_src(
            "rich(t) :- docs(d), extractAmount(d, t, v), atLeast(v, 100).")
        assert len(run(plan)["rich"]) == 1
        assert len(run(plan, "just $50M here\n")["rich"]) == 0

    def test_join_of_two_branches(self):
        plan = compile_src(
            "pairs(n, y) :- docs(d), extractName(d, n), extractYear(d, y), "
            "before(n, y).")
        rows = run(plan)["pairs"]
        pairs = {(PAGE[r["n"].start:r["n"].end],
                  PAGE[r["y"].start:r["y"].end]) for r in rows}
        assert ("Alice Chen", "1999") in pairs
        assert ("Karen Xu", "1999") not in pairs  # 1999 is before Karen

    def test_derived_relation_inlined(self):
        plan = compile_src("""
            names(v) :- docs(d), extractName(d, v).
            out(x) :- names(x).
        """)
        assert len(run(plan)["out"]) == 2

    def test_projection_dedupes(self):
        plan = compile_src(
            "years(y) :- docs(d), extractYear(d, y).")
        rows = run(plan, "1999 and 1999 again\n")["years"]
        assert len(rows) == 2  # distinct positions -> distinct spans

    def test_scan_binds_whole_page(self):
        node = ScanNode("d")
        rows = evaluate_plain(node, "hello", "d7", {})
        assert rows == [{"d": Span("d7", 0, 5)}]


class TestCSE:
    def test_shared_subplan_across_rules(self):
        plan = compile_src("""
            a(v) :- docs(d), extractBody(d, b), extractName(b, v).
            b2(v) :- docs(d), extractBody(d, b), extractYear(b, v).
        """)
        nodes = plan.all_nodes()
        body_nodes = [n for n in nodes if isinstance(n, IENode)
                      and n.extractor.name == "extractBody"]
        assert len(body_nodes) == 1  # shared, not duplicated

    def test_shared_node_has_two_parents(self):
        plan = compile_src("""
            a(v) :- docs(d), extractBody(d, b), extractName(b, v).
            b2(v) :- docs(d), extractBody(d, b), extractYear(b, v).
        """)
        parents = plan.parents()
        body = [n for n in plan.all_nodes() if isinstance(n, IENode)
                and n.extractor.name == "extractBody"][0]
        assert len(parents[id(body)]) == 2


class TestUnits:
    def test_sigma_on_outputs_absorbed(self):
        plan = compile_src(
            "rich(t) :- docs(d), extractAmount(d, t, v), atLeast(v, 100).")
        units = find_units(plan)
        assert len(units) == 1
        kinds = [type(n).__name__ for n in units[0].absorbed]
        assert "SelectNode" in kinds
        assert "ProjectNode" in kinds  # head keeps only t (a span field)

    def test_sigma_on_two_branches_not_absorbed(self):
        plan = compile_src(
            "pairs(n, y) :- docs(d), extractName(d, n), extractYear(d, y), "
            "before(n, y).")
        units = find_units(plan)
        for unit in units:
            assert not any(isinstance(n, SelectNode) for n in unit.absorbed)

    def test_head_pi_with_passthrough_not_absorbed(self):
        # Head keeps d's extraction AND the upper output: π not within
        # one unit's fields, so it must stay outside.
        plan = compile_src(
            "out(b, v) :- docs(d), extractBody(d, b), extractName(b, v).")
        units = find_units(plan)
        name_unit = [u for u in units
                     if u.extractor.name == "extractName"][0]
        assert not name_unit.projects_away_input

    def test_unit_alpha_beta_transfer(self, play_units):
        for unit in play_units:
            assert unit.alpha == unit.extractor.scope
            assert unit.beta == unit.extractor.context

    def test_shared_unit_not_absorbed_through_multi_parent(self):
        plan = compile_src("""
            a(v) :- docs(d), extractBody(d, b), extractName(b, v).
            b2(v) :- docs(d), extractBody(d, b), extractYear(b, v).
        """)
        units = find_units(plan)
        body_unit = [u for u in units
                     if u.extractor.name == "extractBody"][0]
        assert body_unit.absorbed == ()

    def test_uids_unique(self, play_units):
        uids = [u.uid for u in play_units]
        assert len(set(uids)) == len(uids)


class TestChains:
    def test_single_chain(self):
        plan = compile_src(
            "names(v) :- docs(d), extractBody(d, b), extractName(b, v).")
        units = find_units(plan)
        chains = partition_chains(units)
        assert len(chains) == 1
        assert [u.extractor.name for u in chains[0].units] == [
            "extractName", "extractBody"]

    def test_fanout_chains(self):
        plan = compile_src(
            "out(n, y) :- docs(d), extractBody(d, b), extractName(b, n), "
            "extractYear(b, y).")
        units = find_units(plan)
        chains = partition_chains(units)
        assert len(chains) == 2
        assert len(chains[0]) + len(chains[1]) == 3
        # First consumer in plan order continues the producer's chain.
        long_chain = max(chains, key=len)
        assert long_chain.bottom.extractor.name == "extractBody"

    def test_producer_unit(self):
        plan = compile_src(
            "names(v) :- docs(d), extractBody(d, b), extractName(b, v).")
        units = find_units(plan)
        name_unit = [u for u in units
                     if u.extractor.name == "extractName"][0]
        body_unit = [u for u in units
                     if u.extractor.name == "extractBody"][0]
        assert producer_unit(name_unit, units) is body_unit
        assert producer_unit(body_unit, units) is None

    def test_every_unit_in_exactly_one_chain(self, play_units):
        chains = partition_chains(play_units)
        seen = [u.uid for c in chains for u in c.units]
        assert sorted(seen) == sorted(u.uid for u in play_units)


class TestUnion:
    SRC = """
        found(v) :- docs(d), extractName(d, v).
        found(v) :- docs(d), extractYear(d, v).
    """

    def test_union_combines_rules(self):
        plan = compile_src(self.SRC)
        rows = run(plan)["found"]
        texts = {PAGE[r["v"].start:r["v"].end] for r in rows}
        assert texts == {"Alice Chen", "Karen Xu", "1999", "2001"}

    def test_union_schema_mismatch_rejected(self):
        from repro.plan.operators import UnionNode
        with pytest.raises(ValueError):
            UnionNode([ScanNode("a"), ScanNode("b")])

    def test_union_dedupes(self):
        plan = compile_src("""
            found(v) :- docs(d), extractName(d, v).
            found(v) :- docs(d), extractName(d, v), before(v, v).
        """)
        # The second rule is a subset of the first; union must dedupe.
        rows = run(plan)["found"]
        keys = [tuple(sorted(r.items())) for r in rows]
        assert len(keys) == len(set(keys))

    def test_union_usable_as_derived_relation(self):
        plan = compile_src(self.SRC + """
            out(x) :- found(x).
        """)
        assert len(run(plan)["out"]) == len(run(plan)["found"])

    def test_union_with_reuse_engine(self, tmp_path):
        import os

        from repro.core.noreuse import NoReuseSystem
        from repro.core.runner import canonical_results
        from repro.corpus.snapshot import snapshot_from_texts
        from repro.plan.units import find_units
        from repro.reuse.engine import PlanAssignment, ReuseEngine

        plan = compile_src(self.SRC)
        units = find_units(plan)
        engine = ReuseEngine(plan, units,
                             PlanAssignment.uniform(units, "UD"))
        s0 = snapshot_from_texts(0, {"u": PAGE})
        s1 = snapshot_from_texts(1, {"u": PAGE.replace("1999", "1987")})
        d0, d1 = str(tmp_path / "0"), str(tmp_path / "1")
        engine.run_snapshot(s0, None, None, d0)
        r1 = engine.run_snapshot(s1, s0, d0, d1)
        expected = NoReuseSystem(plan).process(s1)
        assert canonical_results(r1) == canonical_results(expected)
