"""System-level tests: baselines, Delex façade, runner, agreement."""

import os

import pytest

from repro.corpus import dblife_corpus, wikipedia_corpus
from repro.core.cyclex import CyclexSystem
from repro.core.delex import DelexSystem
from repro.core.noreuse import NoReuseSystem
from repro.core.runner import (
    SYSTEM_NAMES,
    canonical_results,
    make_system,
    run_series,
    verify_agreement,
)
from repro.core.shortcut import ShortcutSystem
from repro.extractors import make_task
from repro.matchers.base import MATCHER_NAMES
from repro.plan import compile_program
from repro.reuse.engine import PlanAssignment


@pytest.fixture(scope="module")
def chair_fast():
    return make_task("chair", work_scale=0)


@pytest.fixture(scope="module")
def dblife_snaps():
    return list(dblife_corpus(n_pages=14, seed=5,
                              p_unchanged=0.6).snapshots(3))


class TestNoReuse:
    def test_results_stable_across_calls(self, chair_fast, dblife_snaps):
        plan = compile_program(chair_fast.program, chair_fast.registry)
        system = NoReuseSystem(plan)
        a = canonical_results(system.process(dblife_snaps[0]))
        b = canonical_results(system.process(dblife_snaps[0]))
        assert a == b

    def test_extraction_dominates_decomposition(self, dblife_snaps):
        task = make_task("chair", work_scale=0.2)
        plan = compile_program(task.program, task.registry)
        result = NoReuseSystem(plan).process(dblife_snaps[0])
        row = result.timings.as_row()
        assert row["extraction"] > 0
        assert row["match"] == 0 and row["copy"] == 0


class TestShortcut:
    def test_identical_pages_copied(self, chair_fast, tmp_path):
        from repro.corpus.evolve import ChangeModel, EvolvingCorpus
        from repro.corpus.generators import DBLifeGenerator
        frozen = ChangeModel(p_unchanged=1.0, p_removed=0.0, p_added=0.0)
        corpus = EvolvingCorpus(DBLifeGenerator(), 10, frozen, seed=5)
        snaps = list(corpus.snapshots(2))
        plan = compile_program(chair_fast.program, chair_fast.registry)
        system = ShortcutSystem(plan, str(tmp_path))
        r0 = system.process(snaps[0])
        r1 = system.process(snaps[1], snaps[0])
        assert canonical_results(r0) == canonical_results(r1)
        assert r1.timings.get("extract") == 0.0

    def test_changed_pages_reextracted_correctly(self, chair_fast,
                                                 dblife_snaps, tmp_path):
        plan = compile_program(chair_fast.program, chair_fast.registry)
        system = ShortcutSystem(plan, str(tmp_path))
        prev = None
        for snap in dblife_snaps:
            result = system.process(snap, prev)
            expected = NoReuseSystem(plan).process(snap)
            assert canonical_results(result) == canonical_results(expected)
            prev = snap


class TestCyclex:
    def test_agrees_with_noreuse(self, chair_fast, dblife_snaps, tmp_path):
        plan = compile_program(chair_fast.program, chair_fast.registry)
        system = CyclexSystem(plan, str(tmp_path),
                              chair_fast.program_alpha,
                              chair_fast.program_beta)
        prev = None
        for snap in dblife_snaps:
            result = system.process(snap, prev)
            expected = NoReuseSystem(plan).process(snap)
            assert canonical_results(result) == canonical_results(expected)
            prev = snap

    def test_small_alpha_program_reuses_partially(self, tmp_path):
        task = make_task("talk", work_scale=0)
        snaps = list(dblife_corpus(n_pages=12, seed=8,
                                   p_unchanged=0.3).snapshots(2))
        plan = compile_program(task.program, task.registry)
        system = CyclexSystem(plan, str(tmp_path), task.program_alpha,
                              task.program_beta)
        system.process(snaps[0])
        result = system.process(snaps[1], snaps[0])
        assert system.last_matcher in MATCHER_NAMES
        expected = NoReuseSystem(plan).process(snaps[1])
        assert canonical_results(result) == canonical_results(expected)


class TestDelex:
    def test_plan_selected_after_bootstrap(self, tmp_path):
        task = make_task("play", work_scale=0.05)
        snaps = list(wikipedia_corpus(n_pages=10, seed=6).snapshots(3))
        system = DelexSystem(task, str(tmp_path), sample_size=4)
        system.process(snaps[0])
        assert system.last_search is None  # bootstrap: no optimization
        system.process(snaps[1], snaps[0])
        assert system.last_search is not None
        assert set(system.describe_plan()) == {u.uid for u in system.units}

    def test_fixed_assignment_respected(self, tmp_path):
        task = make_task("play", work_scale=0)
        snaps = list(wikipedia_corpus(n_pages=8, seed=6).snapshots(2))
        units = DelexSystem(task, str(tmp_path / "probe")).units
        fixed = PlanAssignment.uniform(units, "UD")
        system = DelexSystem(task, str(tmp_path / "run"),
                             fixed_assignment=fixed)
        system.process(snaps[0])
        system.process(snaps[1], snaps[0])
        assert set(system.describe_plan().values()) == {"UD"}

    def test_old_capture_garbage_collected(self, tmp_path):
        task = make_task("play", work_scale=0)
        snaps = list(wikipedia_corpus(n_pages=6, seed=6).snapshots(5))
        system = DelexSystem(task, str(tmp_path), sample_size=3,
                             capture_history=2)
        prev = None
        for snap in snaps:
            system.process(snap, prev)
            prev = snap
        dirs = sorted(d for d in os.listdir(tmp_path)
                      if d.startswith("snap_"))
        assert len(dirs) <= 3

    def test_rejects_wrong_prev_snapshot(self, tmp_path):
        task = make_task("play", work_scale=0)
        snaps = list(wikipedia_corpus(n_pages=6, seed=6).snapshots(3))
        system = DelexSystem(task, str(tmp_path))
        system.process(snaps[0])
        with pytest.raises(ValueError):
            system.process(snaps[2], snaps[2])


class TestRunner:
    def test_make_system_names(self, chair_fast, tmp_path):
        for name in SYSTEM_NAMES:
            assert make_system(name, chair_fast, str(tmp_path / name))
        with pytest.raises(ValueError):
            make_system("bogus", chair_fast, str(tmp_path))

    def test_run_series_and_agreement(self, chair_fast, dblife_snaps,
                                      tmp_path):
        reports = run_series(chair_fast, dblife_snaps,
                             systems=("noreuse", "delex"),
                             workdir=str(tmp_path))
        assert verify_agreement(reports) == []
        report = reports["delex"]
        assert len(report.snapshots) == len(dblife_snaps)
        assert len(report.seconds_series()) == len(dblife_snaps) - 1
        assert report.total_seconds() >= 0

    def test_verify_agreement_detects_mismatch(self, chair_fast,
                                               dblife_snaps, tmp_path):
        reports = run_series(chair_fast, dblife_snaps,
                             systems=("noreuse", "shortcut"),
                             workdir=str(tmp_path))
        # Sabotage one snapshot's results.
        broken = reports["shortcut"].snapshots[1]
        broken.results = {rel: frozenset()
                          for rel in broken.results}
        problems = verify_agreement(reports)
        assert problems

    def test_missing_reference(self, chair_fast, dblife_snaps, tmp_path):
        reports = run_series(chair_fast, dblife_snaps,
                             systems=("shortcut",), workdir=str(tmp_path))
        assert verify_agreement(reports)

    def test_mean_decomposition_keys(self, chair_fast, dblife_snaps,
                                     tmp_path):
        reports = run_series(chair_fast, dblife_snaps,
                             systems=("noreuse",), workdir=str(tmp_path))
        decomp = reports["noreuse"].mean_decomposition()
        assert set(decomp) == {"match", "extraction", "copy", "opt",
                               "io", "others", "total"}


@pytest.mark.parametrize("task_name", ["talk", "chair", "blockbuster"])
def test_all_four_systems_agree(task_name, tmp_path):
    task = make_task(task_name, work_scale=0)
    corpus = (dblife_corpus(n_pages=10, seed=13, p_unchanged=0.5)
              if task.corpus == "dblife"
              else wikipedia_corpus(n_pages=10, seed=13))
    snaps = list(corpus.snapshots(3))
    reports = run_series(task, snaps, workdir=str(tmp_path))
    assert verify_agreement(reports) == []
