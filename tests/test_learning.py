"""Learning-based extractors: ME segmenter and CRF field extractors."""

import pytest

from repro.extractors.learning import (
    CRFFieldExtractor,
    MaxEntSentenceSegmenter,
    _LinearChainCRF,
    _LogisticModel,
)


@pytest.fixture(scope="module")
def segmenter():
    return MaxEntSentenceSegmenter()


@pytest.fixture(scope="module")
def crf_birth_date():
    return CRFFieldExtractor("crfBirthDate", "value", "birth_date")


@pytest.fixture(scope="module")
def crf_name():
    return CRFFieldExtractor("crfName", "value", "name")


class TestLogisticModel:
    def test_learns_separable_data(self):
        model = _LogisticModel()
        data = [(["f=yes"], True), (["f=no"], False)] * 20
        model.train(data)
        assert model.predict(["f=yes"])
        assert not model.predict(["f=no"])


class TestSegmenter:
    def test_declares_paper_parameters(self, segmenter):
        assert segmenter.scope == 321
        assert segmenter.context == 16

    def test_splits_simple_sentences(self, segmenter):
        text = ("Alice Chen starred as Captain Reyes in Midnight Horizon "
                "(1994). Critics praised the cinematography and the "
                "supporting cast.")
        got = segmenter.extract(text)
        sents = [text[e.get("sent").start:e.get("sent").end] for e in got]
        assert len(sents) == 2
        assert sents[0].endswith("(1994).")

    def test_model_cached_across_instances(self):
        a = MaxEntSentenceSegmenter()
        b = MaxEntSentenceSegmenter()
        assert a.model is b.model

    def test_deterministic(self, segmenter):
        text = "Born Alice Mary Chen on July 9, 1956. She acted a lot."
        first = segmenter.extract(text)
        second = segmenter.extract(text)
        assert first == second

    def test_empty_text(self, segmenter):
        assert segmenter.extract("") == []


class TestCRFCore:
    def test_viterbi_respects_bio_constraint(self):
        crf = _LinearChainCRF()
        crf.emit[("w=x", "I")] = 5.0  # tempt it into illegal I-after-O
        path = crf.viterbi([["w=x"], ["w=x"]])
        for prev, cur in zip(["O"] + path, path):
            assert not (cur == "I" and prev == "O")

    def test_viterbi_empty(self):
        assert _LinearChainCRF().viterbi([]) == []

    def test_training_reduces_errors(self):
        crf = _LinearChainCRF()
        data = [([["w=a"], ["w=b"]], ["B", "I"]),
                ([["w=c"], ["w=d"]], ["O", "O"])] * 5
        crf.train(data, epochs=3)
        assert crf.viterbi([["w=a"], ["w=b"]]) == ["B", "I"]
        assert crf.viterbi([["w=c"], ["w=d"]]) == ["O", "O"]


class TestCRFFieldExtractors:
    def test_birth_date(self, crf_birth_date):
        text = "Born Alice Mary Chen on July 9, 1956."
        got = crf_birth_date.extract(text)
        values = [text[e.get("value").start:e.get("value").end]
                  for e in got]
        assert any("July" in v and "1956" in v for v in values)

    def test_name_on_intro_sentence(self, crf_name):
        text = "Walter Schmidt is a film actor."
        got = crf_name.extract(text)
        values = [text[e.get("value").start:e.get("value").end]
                  for e in got]
        assert "Walter Schmidt" in values

    def test_filler_yields_nothing_mostly(self, crf_birth_date):
        got = crf_birth_date.extract(
            "The production received generally favorable reviews.")
        assert len(got) <= 1  # permits a rare false positive, not spam

    def test_conservative_alpha_beta(self, crf_birth_date):
        assert crf_birth_date.context == crf_birth_date.scope

    def test_models_cached_per_field(self):
        a = CRFFieldExtractor("x1", "v", "roles")
        b = CRFFieldExtractor("x2", "v", "roles")
        assert a.model is b.model

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            CRFFieldExtractor("x", "v", "nonsense")

    def test_empty_region(self, crf_name):
        assert crf_name.extract("") == []

    def test_roles_extraction(self):
        crf = CRFFieldExtractor("crfRoles", "value", "roles")
        text = "Notable roles include Midnight Horizon and Velvet Empire."
        got = crf.extract(text)
        values = [text[e.get("value").start:e.get("value").end]
                  for e in got]
        assert any("Midnight Horizon" in v for v in values)
