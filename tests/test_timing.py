"""Timer / Timings accounting."""

import time

from repro.timing import COPY, EXTRACT, MATCH, Timer, Timings


class TestTimings:
    def test_accumulates(self):
        t = Timings()
        t.add(MATCH, 0.5)
        t.add(MATCH, 0.25)
        assert t.get(MATCH) == 0.75

    def test_others_is_remainder(self):
        t = Timings(total=2.0)
        t.add(MATCH, 0.5)
        t.add(EXTRACT, 1.0)
        assert t.others == 0.5

    def test_others_never_negative(self):
        t = Timings(total=1.0)
        t.add(MATCH, 2.0)
        assert t.others == 0.0

    def test_as_row_keys(self):
        row = Timings(total=1.0).as_row()
        assert set(row) == {"match", "extraction", "copy", "opt", "io",
                            "others", "total"}

    def test_merged(self):
        a = Timings(total=1.0)
        a.add(MATCH, 0.2)
        b = Timings(total=2.0)
        b.add(MATCH, 0.3)
        b.add(COPY, 0.1)
        merged = a.merged(b)
        assert merged.total == 3.0
        assert merged.get(MATCH) == 0.5
        assert merged.get(COPY) == 0.1
        # Inputs untouched.
        assert a.get(MATCH) == 0.2


class TestTimer:
    def test_measure_accumulates(self):
        timings = Timings()
        timer = Timer(timings)
        with timer.measure(MATCH):
            time.sleep(0.01)
        assert timings.get(MATCH) >= 0.009

    def test_nested_measure_not_double_counted(self):
        timings = Timings()
        timer = Timer(timings)
        with timer.measure(MATCH):
            with timer.measure(EXTRACT):
                time.sleep(0.01)
        assert timings.get(EXTRACT) == 0.0
        assert timings.get(MATCH) >= 0.009

    def test_measure_total(self):
        timings = Timings()
        timer = Timer(timings)
        with timer.measure_total():
            with timer.measure(MATCH):
                pass
        assert timings.total > 0

    def test_exception_still_recorded(self):
        timings = Timings()
        timer = Timer(timings)
        try:
            with timer.measure(MATCH):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert timings.get(MATCH) >= 0.0
        assert not timer._active
