"""repro.obs — registry, tracer, profiler, report, and the zero-cost
contract.

Pins the PR's acceptance properties: the Prometheus exposition is
well-formed (no duplicate samples, no nan, counters non-negative),
the trace export is a loadable Chrome ``trace_event`` document, the
profiler's slow-page heap keeps exactly the K slowest, and — the big
one — extraction output is byte-identical with every obs layer on or
off.
"""

from __future__ import annotations

import json
import math
import os
import re
import tempfile

import pytest

from repro import obs
from repro.obs import profile as oprof
from repro.obs import registry as oreg
from repro.obs import report as oreport
from repro.obs import trace as otrace
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.util import finite_or_zero, safe_rate
from repro.timing import EXTRACT, MATCH, Timings


@pytest.fixture(autouse=True)
def _obs_clean():
    """Every test starts and ends with every obs layer off and empty."""
    obs.disable_all()
    oreg.REGISTRY.reset()
    yield
    obs.disable_all()
    oreg.REGISTRY.reset()


# ---------------------------------------------------------------------------
# util: the shared rate guard


class TestSafeRate:
    @pytest.mark.parametrize("num,den,expected", [
        (10.0, 2.0, 5.0),
        (0.0, 0.0, 0.0),          # the classic pages/sec at elapsed==0
        (5.0, 0.0, 0.0),
        (5.0, -1.0, 0.0),         # negative denominators are nonsense
        (0.0, 5.0, 0.0),
        (float("nan"), 2.0, 0.0),
        (2.0, float("nan"), 0.0),
        (float("inf"), 2.0, 0.0),
        (2.0, float("inf"), 0.0),
    ])
    def test_edges(self, num, den, expected):
        value = safe_rate(num, den)
        assert value == expected
        assert math.isfinite(value)

    def test_finite_or_zero(self):
        assert finite_or_zero(1.5) == 1.5
        assert finite_or_zero(float("nan")) == 0.0
        assert finite_or_zero(float("inf")) == 0.0


# ---------------------------------------------------------------------------
# registry primitives


class TestPrimitives:
    def test_counter_rejects_bad_samples(self):
        c = Counter()
        assert c.inc(2.0) and c.value == 2.0
        assert not c.inc(-1.0)
        assert not c.inc(float("nan"))
        assert not c.inc(float("inf"))
        assert c.value == 2.0  # untouched by rejected samples

    def test_gauge(self):
        g = Gauge()
        assert g.set(-3.5) and g.value == -3.5  # gauges may go negative
        assert not g.set(float("nan"))
        assert g.value == -3.5

    def test_histogram_buckets(self):
        h = Histogram((0.1, 1.0))
        for v in (0.05, 0.5, 2.0, 0.09):
            assert h.observe(v)
        assert not h.observe(float("nan"))
        assert h.bucket_counts == [2, 1, 1]  # <=0.1, <=1.0, +Inf
        assert h.count == 4
        assert h.mean == pytest.approx((0.05 + 0.5 + 2.0 + 0.09) / 4)

    def test_histogram_mean_empty(self):
        assert Histogram((1.0,)).mean == 0.0


class TestRegistry:
    def test_labels_and_idempotent_registration(self):
        reg = MetricsRegistry()
        fam = reg.counter("x_total", "help", labels=("system",))
        fam.labels(system="a").inc(1)
        fam2 = reg.counter("x_total", "help", labels=("system",))
        assert fam2 is fam

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="re-registered"):
            reg.gauge("x_total")

    def test_label_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labels=("a",))
        with pytest.raises(ValueError, match="re-registered"):
            reg.counter("x_total", labels=("b",))

    def test_bad_names_raise(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("ok_total", labels=("bad-label",))

    def test_dropped_samples_counted(self):
        reg = MetricsRegistry()
        reg.inc("x_total", -5.0)
        reg.observe("y_seconds", float("nan"))
        dropped = reg.counter("repro_obs_dropped_samples_total")
        assert dropped.child().value == 2.0

    def test_to_dict_shapes(self):
        reg = MetricsRegistry()
        reg.inc("x_total", 2.0, system="a")
        reg.observe("y_seconds", 0.5)
        doc = reg.to_dict()
        assert doc["x_total"]["kind"] == "counter"
        assert doc["x_total"]["samples"][0]["labels"] == {"system": "a"}
        assert doc["y_seconds"]["samples"][0]["count"] == 1


# ---------------------------------------------------------------------------
# Prometheus exposition validity (the mini-parser the CI job also runs)


def parse_prometheus(text):
    """Tiny exposition parser: returns (types, samples) and asserts
    line-level well-formedness."""
    types = {}
    samples = []
    line_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$")
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
            continue
        m = line_re.match(line)
        assert m, f"malformed sample line: {line!r}"
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        assert value != "nan" and value != "NaN", line
        samples.append((name, labels, float(value)
                        if value != "+Inf" else math.inf))
    return types, samples


def test_exposition_is_well_formed():
    reg = MetricsRegistry()
    reg.inc("repro_x_total", 3.0, system="a")
    reg.inc("repro_x_total", 1.5, system='b"quoted\nname')
    reg.set("repro_g", -2.0)
    reg.observe("repro_h_seconds", 0.3, buckets=(0.1, 1.0))
    text = reg.render_prometheus()
    types, samples = parse_prometheus(text)
    assert types["repro_x_total"] == "counter"
    assert types["repro_h_seconds"] == "histogram"
    # No duplicate samples (same name+labels twice).
    keys = [(n, l) for n, l, _ in samples]
    assert len(keys) == len(set(keys))
    # Counters are non-negative.
    for name, _, value in samples:
        if types.get(name) == "counter" or name.endswith("_total"):
            assert value >= 0
    # Histogram buckets are cumulative and _count matches +Inf bucket.
    buckets = [(l, v) for n, l, v in samples
               if n == "repro_h_seconds_bucket"]
    values = [v for _, v in buckets]
    assert values == sorted(values)
    count = [v for n, _, v in samples if n == "repro_h_seconds_count"]
    assert count == [values[-1]]
    # Escaping survived: the label value round-trips without a raw
    # newline breaking the line discipline.
    assert '\\"quoted\\nname' in text


def test_exposition_empty_registry():
    assert MetricsRegistry().render_prometheus() == ""


# ---------------------------------------------------------------------------
# publish points


def _fabricated_timings(total=2.0, match=0.5, extract=1.0):
    t = Timings(total=total)
    t.add(MATCH, match)
    t.add(EXTRACT, extract)
    return t


class TestPublish:
    def test_publish_timings_decomposition(self):
        oreg.publish_timings("delex", _fabricated_timings())
        text = oreg.REGISTRY.render_prometheus()
        types, samples = parse_prometheus(text)
        by_key = {(n, l): v for n, l, v in samples}
        assert by_key[("repro_timing_seconds_total",
                       '{system="delex",category="match"}')] == 0.5
        assert by_key[("repro_timing_seconds_total",
                       '{system="delex",category="extraction"}')] == 1.0
        # 2.0 total - 1.5 attributed = 0.5 others, overlap 0.
        assert by_key[("repro_timing_seconds_total",
                       '{system="delex",category="others"}')] == 0.5
        assert by_key[("repro_timing_overlap_seconds_total",
                       '{system="delex"}')] == 0.0
        assert by_key[("repro_snapshot_seconds_count",
                       '{system="delex"}')] == 1

    def test_publish_timings_overlap(self):
        # Parallel shape: workers' attributed seconds exceed the wall.
        t = _fabricated_timings(total=1.0, match=0.9, extract=0.8)
        oreg.publish_timings("delex", t)
        _, samples = parse_prometheus(oreg.REGISTRY.render_prometheus())
        by_key = {(n, l): v for n, l, v in samples}
        assert by_key[("repro_timing_seconds_total",
                       '{system="delex",category="others"}')] == 0.0
        assert by_key[("repro_timing_overlap_seconds_total",
                       '{system="delex"}')] == pytest.approx(0.7)

    def test_publish_fastpath_and_runtime_attached(self):
        from repro.fastpath.stats import FastPathStats
        from repro.runtime.metrics import BatchMetric, RuntimeMetrics

        t = _fabricated_timings()
        t.fastpath = FastPathStats(memo_hits=3, memo_misses=1)
        t.runtime = RuntimeMetrics(
            backend="thread", jobs=2, wall_seconds=2.0,
            batches=[BatchMetric(index=0, pages=10, chars=100,
                                 seconds=3.0)])
        oreg.publish_timings("delex", t)
        doc = oreg.REGISTRY.to_dict()
        assert "repro_fastpath_events_total" in doc
        assert "repro_runtime_pages_per_second" in doc
        hit_rate = doc["repro_fastpath_memo_hit_rate"]["samples"][0]
        assert hit_rate["value"] == pytest.approx(0.75)


# ---------------------------------------------------------------------------
# tracer


class TestTracer:
    def test_span_nesting_and_annotate(self):
        tracer = otrace.install()
        with otrace.span("snap", cat="snapshot", index=3):
            with otrace.span("pg", cat="page", did="p1"):
                otrace.annotate("memo_hits")
                otrace.annotate("memo_hits")
                otrace.annotate("copied", 5)
        otrace.uninstall()
        records = {r.name: r for r in tracer.records}
        assert records["pg"].args == {"did": "p1", "memo_hits": 2,
                                      "copied": 5}
        assert records["snap"].args["index"] == 3
        assert records["pg"].dur >= 0

    def test_event_records_given_duration(self):
        tracer = otrace.install()
        otrace.event("unit", cat="unit", start=10.0, dur=0.25, uid="u1")
        assert tracer.records[0].dur == 0.25
        assert tracer.records[0].args["uid"] == "u1"

    def test_annotate_without_active_span_is_noop(self):
        otrace.install()
        otrace.annotate("orphan")  # must not raise

    def test_disabled_facade_is_noop(self):
        assert otrace.span("x") is otrace.NULL
        with otrace.NULL as sp:
            sp.set("k", 1)
        otrace.event("x", cat="c", start=0, dur=0)
        otrace.annotate("k")

    def test_sampling_keeps_structural_categories(self):
        tracer = otrace.install(sample=0.25)
        for i in range(40):
            tracer.event(f"pg{i}", cat="page", start=i, dur=0.1)
        for i in range(3):
            with tracer.span("snap", cat="snapshot"):
                pass
        cats = [r.cat for r in tracer.records]
        assert cats.count("snapshot") == 3      # always kept
        assert 0 < cats.count("page") < 40      # sampled
        assert tracer.dropped > 0

    def test_ring_buffer_bounds_memory(self):
        tracer = otrace.install(capacity=16)
        for i in range(100):
            tracer.event(f"e{i}", cat="page", start=i, dur=0.1)
        assert len(tracer) == 16
        # The tail survives, the head fell off.
        assert tracer.records[-1].name == "e99"

    def test_export_chrome_document(self, tmp_path):
        tracer = otrace.install()
        with tracer.span("snap", cat="snapshot", pages=2):
            tracer.event("unit", cat="unit", start=1.0, dur=0.5)
        path = str(tmp_path / "trace.json")
        n = tracer.export_chrome(path)
        assert n == 2
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == 2
        for e in events:
            assert e["ph"] == "X"
            assert e["dur"] >= 0
            assert isinstance(e["pid"], int)
        # Events are start-sorted.
        assert [e["ts"] for e in events] == sorted(
            e["ts"] for e in events)

    def test_install_validation(self):
        with pytest.raises(ValueError):
            otrace.Tracer(capacity=0)
        with pytest.raises(ValueError):
            otrace.Tracer(sample=0.0)
        with pytest.raises(ValueError):
            otrace.Tracer(sample=1.5)


# ---------------------------------------------------------------------------
# profiler


class TestProfiler:
    def test_accounting(self):
        profiler = oprof.install()
        oprof.record_unit("u1", 0.2, 0.1)
        oprof.record_unit("u1", 0.3, 0.2)
        oprof.record_matcher("UD", 0.05, 0.05)
        doc = profiler.to_dict()
        assert doc["units"]["u1"]["calls"] == 2
        assert doc["units"]["u1"]["wall_seconds"] == pytest.approx(0.5)
        assert doc["units"]["u1"]["mean_wall_seconds"] == (
            pytest.approx(0.25))
        assert doc["matchers"]["UD"]["calls"] == 1

    def test_slow_page_heap_keeps_k_slowest(self):
        profiler = oprof.Profiler(top_k=3)
        for i, seconds in enumerate([0.5, 0.1, 0.9, 0.2, 0.7, 0.05]):
            profiler.record_page(f"p{i}", seconds)
        slow = profiler.slow_pages()
        assert [p["did"] for p in slow] == ["p2", "p4", "p0"]
        assert [p["seconds"] for p in slow] == [0.9, 0.7, 0.5]
        assert profiler.pages_seen == 6

    def test_negative_samples_clamped(self):
        profiler = oprof.install()
        oprof.record_unit("u", -1.0, -1.0)
        assert profiler.to_dict()["units"]["u"]["wall_seconds"] == 0.0

    def test_disabled_facade_is_noop(self):
        oprof.record_unit("u", 1.0, 1.0)
        oprof.record_page("p", 1.0)
        oprof.record_matcher("UD", 1.0, 1.0)


# ---------------------------------------------------------------------------
# report rendering


def _metrics_doc():
    return {
        "task": "play", "n_snapshots": 2, "n_pages": 5,
        "systems": {
            "delex": {
                "mean_decomposition": {
                    "match": 0.1, "extraction": 0.2, "copy": 0.0,
                    "opt": 0.0, "io": 0.0, "others": 0.05,
                    "total": 0.35},
                "snapshots": [
                    {"timings": {"overlap_seconds": 0.02}},
                    {"timings": {"overlap_seconds": 0.03}},
                ],
            },
        },
        "obs": {"profile": {
            "pages_seen": 4,
            "slow_pages": [{"did": "p9", "seconds": 0.4}],
            "units": {"u1": {"calls": 2, "wall_seconds": 0.3,
                             "cpu_seconds": 0.2,
                             "mean_wall_seconds": 0.15}},
            "matchers": {"UD": {"calls": 1, "wall_seconds": 0.1,
                                "cpu_seconds": 0.1}},
        }},
    }


class TestReport:
    def test_metrics_report(self):
        text = oreport.render_report(_metrics_doc())
        assert "delex" in text
        assert "0.050" in text          # overlap column sums snapshots
        assert "slowest pages" in text
        assert "u1" in text and "UD" in text

    def test_trace_report(self):
        doc = {"traceEvents": [
            {"ph": "X", "cat": "page", "name": "pg", "dur": 2e6,
             "args": {"did": "p1", "paired": True}},
            {"ph": "X", "cat": "unit", "name": "u", "dur": 1e6,
             "args": {"uid": "u1"}},
        ]}
        text = oreport.render_report(doc)
        assert "p1" in text and "2.000" in text
        assert "u1" in text

    def test_unknown_shape_raises(self):
        with pytest.raises(ValueError, match="unrecognized"):
            oreport.render_report({"nope": 1})

    def test_document_kind(self):
        assert oreport.document_kind({"traceEvents": []}) == "trace"
        assert oreport.document_kind({"systems": {}}) == "metrics"
        assert oreport.document_kind({}) == "unknown"


# ---------------------------------------------------------------------------
# the byte-identical contract, end to end


def _run_once(task, snapshots, workdir):
    from repro.core.runner import run_series

    reports = run_series(task, snapshots, systems=("noreuse", "delex"),
                         workdir=workdir)
    return {
        name: [(snap.mentions, snap.results)
               for snap in report.snapshots]
        for name, report in reports.items()
    }


def test_results_identical_with_obs_on():
    from repro.corpus import dblife_corpus
    from repro.extractors import make_task

    snapshots = list(dblife_corpus(n_pages=8, seed=3,
                                   p_unchanged=0.5).snapshots(3))
    task = make_task("talk", work_scale=0)
    with tempfile.TemporaryDirectory() as w1, \
            tempfile.TemporaryDirectory() as w2:
        baseline = _run_once(task, snapshots, w1)
        otrace.install(sample=0.5)
        oprof.install(top_k=3)
        oreg.enable()
        try:
            observed = _run_once(task, snapshots, w2)
        finally:
            obs.disable_all()
    assert observed == baseline
    # And the layers actually saw traffic (the run wasn't silently
    # un-instrumented).
    assert "repro_timing_seconds_total" in oreg.REGISTRY.to_dict()


def test_instrumented_trace_carries_hierarchy():
    from repro.core.runner import run_series
    from repro.corpus import dblife_corpus
    from repro.extractors import make_task

    snapshots = list(dblife_corpus(n_pages=6, seed=1,
                                   p_unchanged=0.5).snapshots(2))
    task = make_task("talk", work_scale=0)
    tracer = otrace.install()
    try:
        with tempfile.TemporaryDirectory() as workdir:
            run_series(task, snapshots, systems=("delex",),
                       workdir=workdir)
    finally:
        obs.disable_all()
    cats = {r.cat for r in tracer.records}
    assert {"snapshot", "page", "unit"} <= cats
    snap_spans = [r for r in tracer.records if r.cat == "snapshot"]
    assert all("pages" in r.args for r in snap_spans)


def test_profiler_sees_units_and_matchers():
    from repro.core.runner import run_series
    from repro.corpus import dblife_corpus
    from repro.extractors import make_task

    snapshots = list(dblife_corpus(n_pages=6, seed=1,
                                   p_unchanged=0.5).snapshots(2))
    task = make_task("talk", work_scale=0)
    profiler = oprof.install(top_k=5)
    try:
        with tempfile.TemporaryDirectory() as workdir:
            run_series(task, snapshots, systems=("delex",),
                       workdir=workdir)
    finally:
        obs.disable_all()
    doc = profiler.to_dict()
    assert doc["units"]                 # every unit accounted
    assert doc["pages_seen"] > 0
    assert doc["slow_pages"]


# ---------------------------------------------------------------------------
# CLI surface


class TestCli:
    def test_run_writes_obs_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        metrics = str(tmp_path / "m.json")
        trace = str(tmp_path / "t.json")
        rc = main(["run", "--task", "talk", "--work-scale", "0",
                   "--systems", "noreuse,delex",
                   "--metrics-json", metrics, "--trace-out", trace,
                   "--profile", "on"])
        assert rc == 0
        # Obs layers were torn down after the run.
        assert not oreg.ENABLED and not otrace.ENABLED
        assert not oprof.ENABLED
        with open(metrics, encoding="utf-8") as f:
            doc = json.load(f)
        assert "registry" in doc["obs"] and "profile" in doc["obs"]
        assert "repro_timing_seconds_total" in doc["obs"]["registry"]
        with open(trace, encoding="utf-8") as f:
            tdoc = json.load(f)
        assert tdoc["traceEvents"]

    def test_obs_report_cli(self, tmp_path, capsys):
        from repro.cli import main

        metrics = str(tmp_path / "m.json")
        with open(metrics, "w", encoding="utf-8") as f:
            json.dump(_metrics_doc(), f)
        rc = main(["obs", "report", "--metrics-json", metrics])
        out = capsys.readouterr().out
        assert rc == 0
        assert "runtime decomposition" in out

    def test_obs_report_rejects_garbage(self, tmp_path, capsys):
        from repro.cli import main

        bad = str(tmp_path / "bad.json")
        with open(bad, "w", encoding="utf-8") as f:
            json.dump({"shrug": 1}, f)
        assert main(["obs", "report", "--metrics-json", bad]) == 2
        assert main(["obs", "report", "--metrics-json",
                     str(tmp_path / "missing.json")]) == 2
        assert main(["obs", "report"]) == 2
