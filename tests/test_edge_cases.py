"""Remaining edge cases: vocab helpers, Cyclex boundary growth,
empty-page handling, and whole-page identity at region edges."""

import random

import pytest

from repro.corpus import vocab
from repro.core.cyclex import CyclexSystem
from repro.core.noreuse import NoReuseSystem
from repro.core.runner import canonical_results
from repro.corpus.snapshot import snapshot_from_texts
from repro.extractors import make_task
from repro.plan import compile_program, find_units
from repro.reuse.engine import PlanAssignment, ReuseEngine


class TestVocabHelpers:
    def test_person_name_shape(self):
        rng = random.Random(0)
        for _ in range(10):
            first, last = vocab.person_name(rng).split(" ")
            assert first in vocab.FIRST_NAMES
            assert last in vocab.LAST_NAMES

    def test_paper_title_components(self):
        rng = random.Random(1)
        title = vocab.paper_title(rng)
        assert any(title.startswith(adj) for adj in vocab.TITLE_ADJECTIVES)
        assert " for " in title

    def test_topic_list_bounds(self):
        rng = random.Random(2)
        for _ in range(20):
            topics = vocab.topic_list(rng, low=1, high=3)
            assert 1 <= len(topics) <= 3
            assert len(set(topics)) == len(topics)  # sampled, no dups

    def test_movie_title_two_words(self):
        rng = random.Random(3)
        first, second = vocab.movie_title(rng).split(" ")
        assert first in vocab.MOVIE_FIRST
        assert second in vocab.MOVIE_SECOND


TALK_LINE = ('Talk: "Scalable Indexing for Web Data" by Alice Chen. '
             "Topics: query optimization. Location: CS 105 at 3 pm.\n")


class TestCyclexBoundaryGrowth:
    """Pages that grow or shrink exactly at their edges stress the
    boundary-alignment rules at program level."""

    def run_pair(self, tmp_path, old_text, new_text):
        task = make_task("talk", work_scale=0)
        plan = compile_program(task.program, task.registry)
        system = CyclexSystem(plan, str(tmp_path), task.program_alpha,
                              task.program_beta)
        s0 = snapshot_from_texts(0, {"u": old_text})
        s1 = snapshot_from_texts(1, {"u": new_text})
        system.process(s0)
        got = system.process(s1, s0)
        want = NoReuseSystem(plan).process(s1)
        assert canonical_results(got) == canonical_results(want)

    def test_text_appended_at_end(self, tmp_path):
        self.run_pair(tmp_path, TALK_LINE, TALK_LINE + "a new line\n")

    def test_text_prepended_at_start(self, tmp_path):
        self.run_pair(tmp_path, TALK_LINE, "a new header\n" + TALK_LINE)

    def test_text_removed_from_end(self, tmp_path):
        self.run_pair(tmp_path, TALK_LINE + "tail\n", TALK_LINE)

    def test_page_becomes_empty(self, tmp_path):
        self.run_pair(tmp_path, TALK_LINE, "")

    def test_page_was_empty(self, tmp_path):
        self.run_pair(tmp_path, "", TALK_LINE)


class TestEngineEmptyPages:
    def test_empty_pages_roundtrip(self, tmp_path):
        task = make_task("play", work_scale=0)
        plan = compile_program(task.program, task.registry)
        units = find_units(plan)
        engine = ReuseEngine(plan, units,
                             PlanAssignment.uniform(units, "UD"))
        s0 = snapshot_from_texts(0, {"u": "", "v": "== Filmography ==\n"})
        s1 = snapshot_from_texts(1, {"u": "", "v": ""})
        d0, d1 = str(tmp_path / "0"), str(tmp_path / "1")
        r0 = engine.run_snapshot(s0, None, None, d0)
        r1 = engine.run_snapshot(s1, s0, d0, d1)
        assert r0.total_mentions() == 0
        assert r1.total_mentions() == 0

    def test_single_char_pages(self, tmp_path):
        task = make_task("play", work_scale=0)
        plan = compile_program(task.program, task.registry)
        units = find_units(plan)
        engine = ReuseEngine(plan, units,
                             PlanAssignment.uniform(units, "ST"))
        s0 = snapshot_from_texts(0, {"u": "x"})
        s1 = snapshot_from_texts(1, {"u": "y"})
        d0, d1 = str(tmp_path / "0"), str(tmp_path / "1")
        engine.run_snapshot(s0, None, None, d0)
        r1 = engine.run_snapshot(s1, s0, d0, d1)
        want = NoReuseSystem(plan).process(s1)
        assert canonical_results(r1) == canonical_results(want)
