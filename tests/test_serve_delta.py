"""Serving-layer delta mode: byte-identity with the other modes, the
batch-oracle guard, resurrection via tombstones, and the check grid's
view-maintenance axis."""

import pytest

from repro.check.grid import CheckConfig, build_grid
from repro.check.oracle import run_oracle
from repro.corpus.evolve import dblife_corpus
from repro.corpus.snapshot import snapshot_from_texts
from repro.extractors.library import make_task
from repro.obs import registry as obs_registry
from repro.serve.views import (
    MaterializedView,
    ViewConfig,
    ViewConsistencyError,
)


def make_view(tmp_path, name, system, task="talk"):
    return MaterializedView(
        ViewConfig(name=name, task=task, system=system, work_scale=0),
        str(tmp_path / name))


@pytest.fixture()
def churny_snapshots():
    return list(dblife_corpus(n_pages=12, seed=21, p_unchanged=0.5)
                .snapshots(4))


class TestDeltaMode:
    def test_delta_registers_as_maintenance_system(self, tmp_path):
        view = make_view(tmp_path, "v", "delta")
        assert view._delta is not None
        with pytest.raises(ValueError):
            ViewConfig(name="x", task="talk", system="bogus")

    def test_byte_identical_to_noreuse_every_generation(
            self, tmp_path, churny_snapshots):
        delta = make_view(tmp_path, "delta", "delta", task="chair")
        noreuse = make_view(tmp_path, "noreuse", "noreuse", task="chair")
        for snapshot in churny_snapshots:
            delta.apply_snapshot(snapshot, check=True)
            noreuse.apply_snapshot(snapshot, check=True)
            gd, gn = delta.generation, noreuse.generation
            # The published relation indexes must agree byte-for-byte
            # (content AND order), not just as sets.
            assert dict(gd.relations) == dict(gn.relations)
            assert set(gd.page_rows) == set(gn.page_rows)
            for did in gd.page_rows:
                for rel in delta.store.schema:
                    assert (set(gd.page_rows[did].get(rel, ()))
                            == set(gn.page_rows[did].get(rel, ()))), (
                        did, rel)

    def test_apply_record_carries_delta_telemetry(
            self, tmp_path, churny_snapshots):
        view = make_view(tmp_path, "v", "delta")
        record = view.apply_snapshot(churny_snapshots[0])
        assert record.delta is not None
        assert record.delta["decisions"] == {
            "new": len(churny_snapshots[0].pages)}
        data = record.to_dict()
        assert data["delta"]["fallback_ratio"] == 0.0
        # Non-delta modes don't grow the field.
        other = make_view(tmp_path, "n", "noreuse")
        rec2 = other.apply_snapshot(churny_snapshots[0])
        assert rec2.delta is None
        assert "delta" not in rec2.to_dict()

    def test_check_guard_catches_drift(self, tmp_path, churny_snapshots):
        view = make_view(tmp_path, "v", "delta")
        view.apply_snapshot(churny_snapshots[0], check=True)
        # Corrupt the maintained index behind the view's back: the
        # pre-swap guard must refuse to publish the next generation.
        rel = view.store.schema[0]
        view._delta.index[rel] = view._delta.index[rel] + (
            (("speaker", (0, 4, "Evil")),),)
        gen_before = view.generation.gen_id
        with pytest.raises(ViewConsistencyError):
            view.apply_snapshot(churny_snapshots[1], check=True)
        assert view.generation.gen_id == gen_before  # still serving

    def test_delta_metrics_published(self, tmp_path, churny_snapshots):
        obs_registry.REGISTRY.reset()
        obs_registry.enable()
        try:
            view = make_view(tmp_path, "v", "delta")
            for snapshot in churny_snapshots[:2]:
                view.apply_snapshot(snapshot)
            families = {f.name for f in
                        obs_registry.REGISTRY.families()}
        finally:
            obs_registry.disable()
            obs_registry.REGISTRY.reset()
        assert {"repro_delta_pages_total", "repro_delta_tuples_total",
                "repro_delta_fallback_ratio",
                "repro_delta_apply_seconds",
                "repro_delta_extractor_calls_total",
                "repro_delta_memo_hits_total"} <= families


class TestResurrection:
    SERIES = [
        {"stay": "talk by Alice Chen. Topics: graphs.\n",
         "churn": "talk by Karen Xu. Topics: joins.\n"},
        {"stay": "talk by Alice Chen. Topics: graphs.\n"},
        {"stay": "talk by Alice Chen. Topics: graphs.\n",
         "churn": "talk by Karen Xu. Topics: joins.\n"},
    ]

    def snapshots(self):
        return [snapshot_from_texts(i, texts)
                for i, texts in enumerate(self.SERIES)]

    def test_diff_distinguishes_resurrected_from_new(self, tmp_path):
        view = make_view(tmp_path, "v", "delta")
        s0, s1, s2 = self.snapshots()
        view.apply_snapshot(s0)
        view.apply_snapshot(s1)
        diff = view.diff_snapshot(s2)
        assert len(diff.new) == 1
        assert diff.resurrected == diff.new  # returned, not brand new
        view.apply_snapshot(s2)
        # Once re-applied the tombstone is consumed.
        assert view._tombstones == {}

    @pytest.mark.parametrize("system", ["delta", "noreuse", "delex"])
    def test_churn_cycle_retract_then_add(self, tmp_path, system):
        """Deletion retracts the page's tuples; the identical-text
        return re-adds them — in every maintenance mode."""
        view = make_view(tmp_path, system, system)
        gens = []
        for snapshot in self.snapshots():
            view.apply_snapshot(snapshot, check=True)
            gens.append(view.generation)
        counts = [len(g.relations.get("talk", ())) for g in gens]
        assert counts == [2, 1, 2]
        assert gens[2].relations == gens[0].relations

    def test_resurrected_decision_recorded(self, tmp_path):
        view = make_view(tmp_path, "v", "delta")
        records = [view.apply_snapshot(s, check=True)
                   for s in self.snapshots()]
        assert records[1].delta["decisions"] == {
            "deleted": 1, "unchanged": 1}
        assert records[2].delta["decisions"] == {
            "resurrected": 1, "unchanged": 1}


class TestCheckGridViewAxis:
    def test_grids_contain_view_configs(self):
        small = [c for c in build_grid("small") if c.view != "-"]
        assert [c.view for c in small] == ["delta"]
        full = {c.view for c in build_grid("full") if c.view != "-"}
        assert full == {"delta", "noreuse", "delex"}

    def test_config_id_and_round_trip(self):
        cfg = CheckConfig(system="delta", view="delta")
        assert cfg.config_id.startswith("view-delta/")
        assert CheckConfig.from_dict(cfg.as_dict()) == cfg
        assert not cfg.capture_comparable()
        with pytest.raises(ValueError):
            CheckConfig(system="delex", view="bogus")

    def test_oracle_sweeps_delta_view(self, tmp_path):
        task = make_task("talk", work_scale=0)
        snapshots = list(dblife_corpus(n_pages=8, seed=5,
                                       p_unchanged=0.5).snapshots(3))
        grid = [CheckConfig(system="delta", view="delta"),
                CheckConfig(system="noreuse", view="noreuse")]
        report = run_oracle(task, snapshots, grid,
                            workdir=str(tmp_path / "sweep"))
        assert report.ok, report.summary()
        assert {o.config.config_id for o in report.outcomes} == {
            "view-delta/-/fp-on/serialx1",
            "view-noreuse/-/fp-on/serialx1"}
