"""Snapshot construction, ordering, persistence, and the store."""

import os

import pytest

from repro.corpus.snapshot import (
    Snapshot,
    iter_snapshot_pages,
    read_snapshot,
    snapshot_from_texts,
    write_snapshot,
)
from repro.corpus.store import CorpusStore
from repro.text.document import Page, content_digest


def make_snapshot(index, texts):
    return snapshot_from_texts(index, texts)


class TestPage:
    def test_digest_stable(self):
        assert content_digest("abc") == content_digest("abc")
        assert content_digest("abc") != content_digest("abd")

    def test_identical_to(self):
        a = Page.from_url("u", "hello")
        b = Page.from_url("u", "hello")
        c = Page.from_url("u", "bye")
        assert a.identical_to(b)
        assert not a.identical_to(c)

    def test_whole_and_region(self):
        page = Page.from_url("u", "hello world")
        assert page.whole.end == 11
        assert page.region_text(page.whole) == "hello world"
        assert page.whole_span().did == "u"


class TestSnapshot:
    def test_lookup(self):
        snap = make_snapshot(0, {"u1": "a", "u2": "b"})
        assert snap.get("u1").text == "a"
        assert snap.get("zzz") is None
        assert len(snap) == 2

    def test_rejects_duplicate_urls(self):
        with pytest.raises(ValueError):
            Snapshot(0, [Page.from_url("u", "a"), Page.from_url("u", "b")])

    def test_add(self):
        snap = make_snapshot(0, {"u1": "a"})
        snap.add(Page.from_url("u2", "b"))
        assert snap.get("u2") is not None
        with pytest.raises(ValueError):
            snap.add(Page.from_url("u1", "again"))

    def test_total_bytes(self):
        snap = make_snapshot(0, {"u1": "aaaa", "u2": "bb"})
        assert snap.total_bytes() == 6

    def test_ordered_like_shared_pages_first(self):
        prev = Snapshot(0, [Page.from_url(u, "x") for u in "cab"])
        cur = snapshot_from_texts(1, {u: "y" for u in "abcd"})
        ordered = cur.ordered_like(prev)
        assert ordered.urls() == ["c", "a", "b", "d"]

    def test_ordered_like_handles_removed(self):
        prev = Snapshot(0, [Page.from_url(u, "x") for u in "abc"])
        cur = snapshot_from_texts(1, {"a": "y", "c": "y"})
        assert cur.ordered_like(prev).urls() == ["a", "c"]


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        snap = make_snapshot(3, {"u1": "hello\nworld", "u2": "bye"})
        path = str(tmp_path / "snap.dat")
        write_snapshot(snap, path)
        loaded = read_snapshot(path)
        assert loaded.index == 3
        assert loaded.urls() == snap.urls()
        assert loaded.get("u1").text == "hello\nworld"

    def test_streaming_iterator(self, tmp_path):
        snap = make_snapshot(0, {f"u{i}": f"text {i}" for i in range(20)})
        path = str(tmp_path / "snap.dat")
        write_snapshot(snap, path)
        pages = list(iter_snapshot_pages(path))
        assert len(pages) == 20
        assert pages[0].text.startswith("text")

    def test_unicode_pages(self, tmp_path):
        snap = make_snapshot(0, {"u": "héllo wörld — ünïcode"})
        path = str(tmp_path / "snap.dat")
        write_snapshot(snap, path)
        assert read_snapshot(path).get("u").text == "héllo wörld — ünïcode"


class TestCorpusStore:
    def test_append_and_load(self, tmp_path):
        store = CorpusStore(str(tmp_path / "store"))
        store.append(make_snapshot(0, {"u": "a"}))
        store.append(make_snapshot(1, {"u": "b"}))
        assert len(store) == 2
        assert store.latest_index == 1
        assert store.load(1).get("u").text == "b"

    def test_rejects_gap(self, tmp_path):
        store = CorpusStore(str(tmp_path / "store"))
        store.append(make_snapshot(0, {"u": "a"}))
        with pytest.raises(ValueError):
            store.append(make_snapshot(5, {"u": "b"}))

    def test_load_missing(self, tmp_path):
        store = CorpusStore(str(tmp_path / "store"))
        with pytest.raises(KeyError):
            store.load(0)

    def test_iteration_order(self, tmp_path):
        store = CorpusStore(str(tmp_path / "store"))
        for i in range(3):
            store.append(make_snapshot(i, {"u": str(i)}))
        assert [s.index for s in store] == [0, 1, 2]

    def test_reuse_dir(self, tmp_path):
        store = CorpusStore(str(tmp_path / "store"))
        path = store.reuse_dir("delex", 2)
        assert os.path.isdir(path)
        assert "delex" in path and "0002" in path
