"""The sharded serving tier's concurrency/chaos test campaign.

Four fronts, matching the guarantees repro.shard claims:

* **partition stability** — a page's shard depends only on its did;
  a leave-and-return page lands on the same shard (resurrection pin);
* **scatter-gather parity** — for random page sets, shard counts, and
  delta series, the merged cross-shard answer is byte-identical to a
  single ``TupleStore`` (same relation indexes, same pagination
  order), including under mid-apply concurrent readers;
* **generation-vector consistency** — N shards + M reader threads
  during churn-heavy ingest: no response ever mixes per-snapshot
  generations across shards (every response equals the batch
  reference *for its own snapshot index*);
* **chaos** — killing/stalling one shard's loop degrades the router
  gracefully (healthz names the lagging shard, reads serve the last
  consistent vector, the front door backpressures) and the tier heals
  on restart; a quarantined sub-snapshot freezes the vector at the
  last consistent index and heals at the next clean apply.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runner import canonical_results, make_system
from repro.corpus import dblife_corpus
from repro.corpus.snapshot import Snapshot
from repro.serve import ViewConfig, ViewRegistry, lag_series
from repro.serve.server import ServeApp
from repro.serve.store import (EmptyViewError, TupleStore, _sort_key,
                               build_relation_index)
from repro.shard import Partitioner, ShardVector, ShardedDeployment, shard_of
from repro.text.document import Page

N_PAGES = 24


@pytest.fixture(scope="module")
def snapshots():
    """A churn-heavy series (half the pages change every snapshot)."""
    return list(dblife_corpus(n_pages=N_PAGES, seed=5,
                              p_unchanged=0.5).snapshots(5))


@pytest.fixture(scope="module")
def reference(snapshots):
    """Batch NoReuse canonical results, per snapshot index."""
    import tempfile

    from repro.extractors import make_task

    task = make_task("talk", work_scale=0)
    ref = {}
    with tempfile.TemporaryDirectory() as workdir:
        system = make_system("noreuse", task, workdir)
        for snapshot in snapshots:
            ref[snapshot.index] = canonical_results(
                system.process(snapshot))
    return ref


def _talk_config(**overrides):
    kwargs = dict(name="talk", task="talk", work_scale=0.0,
                  system="noreuse")
    kwargs.update(overrides)
    return ViewConfig(**kwargs)


def _deployment(workdir, n_shards, **kwargs):
    kwargs.setdefault("check", True)
    return ShardedDeployment(str(workdir), [_talk_config()],
                             n_shards=n_shards, **kwargs)


def _ordered(reference_rel):
    """The single store's pagination order for a reference relation."""
    return tuple(sorted(reference_rel, key=_sort_key))


# ---------------------------------------------------------------------------
# Partition stability


class TestPartitioner:
    def test_assignment_depends_only_on_did(self):
        p = Partitioner(4)
        for did in ("a", "page-7", "http://x/y", "ü"):
            assert p.shard_of(did) == shard_of(did, 4)
            assert p.shard_of(did) == Partitioner(4).shard_of(did)

    def test_pinned_assignments(self):
        # Frozen expected values: the partition function is part of
        # the tier's on-disk/state compatibility surface — a hash or
        # modulus change would silently migrate every page's reuse
        # state, so any change here must be deliberate.
        assert shard_of("page-0", 4) == 2
        assert shard_of("page-1", 4) == 1
        assert shard_of("page-2", 2) == 0
        import hashlib
        want = int.from_bytes(
            hashlib.blake2b(b"page-0", digest_size=8).digest(),
            "big") % 4
        assert shard_of("page-0", 4) == want

    def test_split_preserves_order_and_covers(self, snapshots):
        p = Partitioner(3)
        subs = p.split(snapshots[0])
        assert len(subs) == 3
        seen = []
        for shard_id, sub in enumerate(subs):
            assert sub.index == snapshots[0].index
            for page in sub.pages:
                assert p.shard_of(page.did) == shard_id
            seen.extend(sub.pages)
        assert sorted(pg.did for pg in seen) == \
            sorted(pg.did for pg in snapshots[0].pages)
        # Within a shard, the parent snapshot's page order holds.
        order = {pg.did: i for i, pg in enumerate(snapshots[0].pages)}
        for sub in subs:
            positions = [order[pg.did] for pg in sub.pages]
            assert positions == sorted(positions)

    def test_every_shard_sees_every_index(self):
        # An empty subset is still a sub-snapshot: the barrier needs
        # every shard to report every snapshot index.
        snap = Snapshot(7, [Page.from_url("only", "one page")])
        subs = Partitioner(5).split(snap)
        assert [s.index for s in subs] == [7] * 5
        assert sum(len(s) for s in subs) == 1

    def test_resurrection_lands_on_same_shard(self):
        # Leave-and-return must not migrate shards: the returning
        # page's tombstone (and its retract-then-add) lives on the
        # shard that deleted it.
        p = Partitioner(4)
        page = Page.from_url("comeback", "text v1")
        home = p.shard_of(page.did)
        series = [
            Snapshot(0, [page, Page.from_url("other", "x")]),
            Snapshot(1, [Page.from_url("other", "x")]),
            Snapshot(2, [Page.from_url("comeback", "text v2"),
                         Page.from_url("other", "x")]),
        ]
        for snap in series:
            subs = p.split(snap)
            for shard_id, sub in enumerate(subs):
                if any(pg.did == "comeback" for pg in sub.pages):
                    assert shard_id == home


# ---------------------------------------------------------------------------
# Scatter-gather parity (property-based)


_VALUE = st.text(alphabet="abc", min_size=1, max_size=3)
_ROW = st.builds(lambda x, y: (("x", x), ("y", y)), _VALUE, _VALUE)
_STATE = st.dictionaries(
    keys=st.sampled_from([f"p{i}" for i in range(10)]),
    values=st.lists(_ROW, max_size=4),
    max_size=10)


class TestScatterGatherParity:
    @settings(max_examples=60, deadline=None)
    @given(n_shards=st.integers(1, 5),
           series=st.lists(_STATE, min_size=1, max_size=4))
    def test_merged_vector_matches_single_store(self, n_shards, series):
        """Random delta series (upserts + deletes), random shard
        counts: the vector's merged relation index is byte-identical
        to the single eager store — content *and* order."""
        p = Partitioner(n_shards)
        single = TupleStore("v", ("rel",))
        shards = [TupleStore("v", ("rel",), lazy_index=True)
                  for _ in range(n_shards)]
        prev_dids = set()
        for index, state in enumerate(series):
            upserts = {did: {"rel": rows}
                       for did, rows in state.items()}
            deletes = sorted(prev_dids - set(state))
            single.apply_delta(index, upserts, deletes=deletes)
            for shard_id, store in enumerate(shards):
                store.apply_delta(
                    index,
                    {did: rels for did, rels in upserts.items()
                     if p.shard_of(did) == shard_id},
                    deletes=[d for d in deletes
                             if p.shard_of(d) == shard_id])
            prev_dids = set(state)
        vector = ShardVector(
            "v", vector_id=1, snapshot_index=len(series) - 1,
            generations=[s.current() for s in shards],
            published_mono=0.0, lag_seconds=None)
        want = single.current().relations["rel"]
        got = vector.relation("rel")
        assert got == want
        # Same canonical order as a from-scratch global rebuild too.
        merged_pages = {}
        for store in shards:
            merged_pages.update(store.current().page_rows)
        assert got == build_relation_index(merged_pages, "rel")
        # Pagination slices agree at every offset.
        for offset in range(0, len(want) + 1, 3):
            assert got[offset:offset + 2] == want[offset:offset + 2]

    def test_parity_under_mid_apply_readers(self, snapshots, reference,
                                            tmp_path):
        """Readers racing the shard apply loops must always see a page
        (offset/limit slice) of exactly the single store's answer for
        the response's own snapshot index."""
        dep = _deployment(tmp_path, n_shards=3)
        relations = list(dep.workers[0].registry.get("talk").store.schema)
        ordered = {idx: {rel: _ordered(reference[idx][rel])
                         for rel in relations}
                   for idx in reference}
        stop = threading.Event()
        errors = []
        sampled = set()

        def reader(offset, limit):
            while not stop.is_set():
                for rel in relations:
                    try:
                        full = dep.router.query("talk", rel, limit=10000)
                        page = dep.router.query("talk", rel,
                                                offset=offset,
                                                limit=limit)
                    except EmptyViewError:
                        continue
                    except Exception as exc:  # noqa: BLE001
                        errors.append(repr(exc))
                        stop.set()
                        return
                    want = ordered[full.snapshot_index][rel]
                    if tuple(full.tuples) != want:
                        errors.append(
                            f"snapshot {full.snapshot_index} {rel}: "
                            "full read is not the single-store answer")
                        stop.set()
                        return
                    want_slice = ordered[page.snapshot_index][rel][
                        offset:offset + limit]
                    if tuple(page.tuples) != want_slice:
                        errors.append(
                            f"snapshot {page.snapshot_index} {rel}: "
                            f"slice @{offset}+{limit} diverges")
                        stop.set()
                        return
                    sampled.add(full.snapshot_index)

        threads = [threading.Thread(target=reader, args=(off, 3))
                   for off in (0, 2)]
        dep.start()
        for t in threads:
            t.start()
        try:
            for snapshot in snapshots:
                assert dep.push(snapshot, block=True, timeout=10.0)
                time.sleep(0.03)
            assert dep.drain(timeout=60.0)
            time.sleep(0.05)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=5)
            dep.stop()
        assert not errors, errors[0]
        assert sampled, "readers never observed a vector"


# ---------------------------------------------------------------------------
# Generation-vector consistency under churn (the acceptance stress)


class TestVectorConsistencyStress:
    def test_no_response_mixes_snapshots_across_shards(
            self, snapshots, reference, tmp_path):
        """≥4 readers, ≥2 shards, full churn series, check=on: every
        response must equal the batch reference for its own snapshot
        index — a response mixing shard A at snapshot k with shard B
        at k-1 cannot satisfy that for any index."""
        n_readers, n_shards = 4, 2
        dep = _deployment(tmp_path, n_shards=n_shards, check=True)
        relations = list(dep.workers[0].registry.get("talk").store.schema)
        stop = threading.Event()
        errors = []
        indexes_seen = set()

        def reader():
            while not stop.is_set():
                for rel in relations:
                    try:
                        result = dep.router.query("talk", rel,
                                                  limit=100000)
                    except EmptyViewError:
                        continue
                    except Exception as exc:  # noqa: BLE001
                        errors.append(repr(exc))
                        stop.set()
                        return
                    expected = reference[result.snapshot_index][rel]
                    if (frozenset(result.tuples) != expected
                            or result.total != len(result.tuples)):
                        errors.append(
                            f"vector {result.generation} (snapshot "
                            f"{result.snapshot_index}) relation "
                            f"{rel}: response does not match the "
                            "batch reference for its own snapshot — "
                            "a torn cross-shard read")
                        stop.set()
                        return
                    indexes_seen.add(result.snapshot_index)

        threads = [threading.Thread(target=reader)
                   for _ in range(n_readers)]
        dep.start()
        for t in threads:
            t.start()
        try:
            for snapshot in snapshots:
                assert dep.push(snapshot, block=True, timeout=10.0)
                time.sleep(0.03)    # let readers sample this vector
            assert dep.drain(timeout=60.0)
            time.sleep(0.05)
            healthy_at_end = dep.healthz()["ok"]
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=5)
            dep.stop()
        assert not errors, errors[0]
        assert indexes_seen, "readers never observed a vector"
        # Every published vector's shards agreed on the barrier index
        # and the tier ended healthy (checked while loops were alive).
        publishes = dep.router.publishes("talk")
        assert [p["snapshot_index"] for p in publishes] == \
            sorted({p["snapshot_index"] for p in publishes})
        assert healthy_at_end

    def test_resurrection_through_the_tier(self, tmp_path):
        """A page that leaves and returns is a retract-then-add on its
        home shard; the final vector equals the single-store answer."""
        pages = [Page.from_url(f"p{i}", f"Prof. Ada Lovelace gave a "
                                        f"talk number {i}.")
                 for i in range(6)]
        gone = pages[2]
        series = [
            Snapshot(0, list(pages)),
            Snapshot(1, [p for p in pages if p.did != gone.did]),
            Snapshot(2, list(pages)),   # same text returns
        ]
        dep = _deployment(tmp_path / "shards", n_shards=3)
        dep.start()
        try:
            for snap in series:
                assert dep.push(snap, block=True, timeout=10.0)
            assert dep.drain(timeout=60.0)
        finally:
            dep.stop()
        single = ViewRegistry(str(tmp_path / "single")).register(
            _talk_config())
        for snap in series:
            single.apply_snapshot(snap)
        vector = dep.router.vector("talk")
        assert vector.snapshot_index == 2
        for rel in single.store.schema:
            assert vector.relation(rel) == \
                single.store.current().relations[rel]
        # The home shard recorded the delete and the return.
        home = dep.partitioner.shard_of(gone.did)
        view = dep.workers[home].registry.get("talk")
        deletes = [r.pages_deleted for r in view.history]
        assert sum(deletes) >= 1
        assert gone.did in view.generation.page_rows


# ---------------------------------------------------------------------------
# Chaos: dead shard, quarantined sub-snapshot, heal


class TestChaos:
    def test_dead_shard_degrades_then_heals(self, snapshots, reference,
                                            tmp_path):
        dep = _deployment(tmp_path, n_shards=2, capacity=2)
        relations = list(dep.workers[0].registry.get("talk").store.schema)
        dep.start()
        try:
            for snapshot in snapshots[:2]:
                assert dep.push(snapshot, block=True, timeout=10.0)
            assert dep.drain(timeout=60.0)
            vector = dep.router.vector("talk")
            assert vector.snapshot_index == snapshots[1].index

            # Kill shard 1's apply loop mid-series.
            assert dep.workers[1].loop.stop()
            assert dep.push(snapshots[2], block=True, timeout=10.0)
            time.sleep(0.3)     # shard 0 applies; shard 1 never will

            # Degraded, lagging shard named, but reads still serve the
            # last consistent vector — never a torn mix.
            hz = dep.healthz()
            assert not hz["ok"]
            assert 1 in hz["views"]["talk"]["lagging_shards"]
            stuck = dep.router.query("talk", relations[0], limit=100000)
            assert stuck.snapshot_index == snapshots[1].index
            assert frozenset(stuck.tuples) == \
                reference[snapshots[1].index][relations[0]]

            # The dead shard holds admission tokens: the front door
            # backpressures instead of queueing without bound.
            admitted = 0
            while dep.push(snapshots[3], block=False):
                admitted += 1
                if admitted > 10:
                    pytest.fail("front door never backpressured")
            assert dep.depth >= 1

            # Restart the shard: it drains, reports, heals.
            dep.workers[1].loop.start()
            assert dep.drain(timeout=60.0)
            healed = dep.router.vector("talk")
            assert healed.snapshot_index >= snapshots[2].index
            assert dep.healthz()["ok"]
            final = dep.router.query("talk", relations[0], limit=100000)
            assert frozenset(final.tuples) == \
                reference[final.snapshot_index][relations[0]]
        finally:
            dep.stop()

    def test_quarantined_subsnapshot_freezes_vector_then_heals(
            self, snapshots, reference, tmp_path):
        """One shard quarantines snapshot k (apply fault, reusing the
        serve quarantine machinery): the barrier never fires for k,
        the view serves the k-1 vector, and the first index every
        shard applies cleanly heals it automatically."""
        dep = _deployment(tmp_path, n_shards=2, check=False)
        relations = list(dep.workers[0].registry.get("talk").store.schema)
        poisoned_index = snapshots[1].index
        view1 = dep.workers[1].registry.get("talk")

        def fault(snapshot):
            if snapshot.index == poisoned_index:
                raise RuntimeError("injected shard-1 apply fault")

        view1._apply_hook = fault
        dep.start()
        try:
            for snapshot in snapshots[:3]:
                assert dep.push(snapshot, block=True, timeout=10.0)
            assert dep.drain(timeout=60.0)

            # Snapshot 1 never published (shard 1 quarantined it);
            # snapshot 2 applied everywhere and healed the vector.
            published = [p["snapshot_index"]
                         for p in dep.router.publishes("talk")]
            assert poisoned_index not in published
            assert snapshots[2].index in published
            hz = dep.healthz()
            assert not hz["ok"]     # quarantine stays visible
            assert hz["views"]["talk"]["quarantined"] == 1
            result = dep.router.query("talk", relations[0],
                                      limit=100000)
            assert result.snapshot_index == snapshots[2].index
            assert frozenset(result.tuples) == \
                reference[snapshots[2].index][relations[0]]
        finally:
            dep.stop()

    def test_empty_tier_returns_503_shape(self, tmp_path):
        dep = _deployment(tmp_path, n_shards=2)
        app = ServeApp(dep.workers[0].registry, dep, dep, sharded=dep)
        status, payload = app.handle_query({"view": "talk"})
        assert status == 503
        assert "no generation" in payload["error"]


# ---------------------------------------------------------------------------
# Replica routing


class TestReplicas:
    def test_replica_hits_and_stale_fallback(self, snapshots, tmp_path):
        dep = _deployment(tmp_path, n_shards=2, n_replicas=2,
                          max_staleness=0)
        relations = list(dep.workers[0].registry.get("talk").store.schema)
        dep.start()
        try:
            assert dep.push(snapshots[0], block=True, timeout=10.0)
            assert dep.drain(timeout=60.0)
            served = dep.router.query("talk", relations[0], limit=10)
            assert sum(rs.hits for rs in dep.router.replica_sets) > 0

            # Drop all future replication on shard 0: replicas go
            # stale, the router falls back to the primary, and the
            # answer is still the vector's — byte-identical.
            for replica in dep.router.replica_sets[0].replicas:
                replica.offer_delay = lambda view, gen: (_ for _ in ()
                                                         ).throw(
                    RuntimeError("dropped replication"))
            assert dep.push(snapshots[1], block=True, timeout=10.0)
            assert dep.drain(timeout=60.0)
            before = sum(rs.fallbacks for rs in dep.router.replica_sets)
            fresh = dep.router.query("talk", relations[0], limit=100000)
            assert fresh.snapshot_index == snapshots[1].index
            after = sum(rs.fallbacks for rs in dep.router.replica_sets)
            assert after > before
            assert served.view == fresh.view
        finally:
            dep.stop()


# ---------------------------------------------------------------------------
# Lag reporting (the BENCH_serve bootstrap fix)


class TestLagSeries:
    def test_bootstrap_none_reports_zero(self):
        records = [
            {"snapshot_index": 0, "lag_seconds": None},
            {"snapshot_index": 1, "lag_seconds": 0.7},
            {"snapshot_index": 2, "lag_seconds": 1.4},
        ]
        assert lag_series(records) == [0.0, 0.7, 1.4]

    def test_non_bootstrap_none_is_skipped_not_invented(self):
        records = [
            {"snapshot_index": 0, "lag_seconds": 0.1},
            {"snapshot_index": 1, "lag_seconds": None},
            {"snapshot_index": 2, "lag_seconds": 0.3},
        ]
        assert lag_series(records) == [0.1, 0.3]

    def test_verdict_math_never_sees_none(self):
        # The regression BENCH_serve.json hit: max()/sum() over a lag
        # series that starts with a bootstrap None.
        records = [{"lag_seconds": None}, {"lag_seconds": 2.0}]
        lags = lag_series(records)
        assert max(lags) == 2.0
        assert all(isinstance(v, float) for v in lags)

    def test_empty_series(self):
        assert lag_series([]) == []
