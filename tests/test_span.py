"""Interval/Span algebra tests, including hypothesis properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.span import (
    Interval,
    Span,
    complement_intervals,
    intersect_interval_sets,
    merge_intervals,
    total_length,
)

intervals = st.builds(
    lambda a, b: Interval(min(a, b), max(a, b)),
    st.integers(0, 500), st.integers(0, 500))

interval_lists = st.lists(intervals, max_size=12)


class TestInterval:
    def test_basic_properties(self):
        iv = Interval(3, 8)
        assert len(iv) == 5
        assert iv.length == 5
        assert not iv.is_empty()
        assert Interval(4, 4).is_empty()

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Interval(5, 3)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            Interval(-1, 3)

    def test_contains(self):
        assert Interval(0, 10).contains(Interval(2, 5))
        assert Interval(0, 10).contains(Interval(0, 10))
        assert not Interval(0, 10).contains(Interval(2, 11))

    def test_contains_point_is_half_open(self):
        iv = Interval(2, 5)
        assert iv.contains_point(2)
        assert iv.contains_point(4)
        assert not iv.contains_point(5)

    def test_overlaps_excludes_touching(self):
        assert Interval(0, 5).overlaps(Interval(4, 8))
        assert not Interval(0, 5).overlaps(Interval(5, 8))

    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 8)) == Interval(3, 5)
        assert Interval(0, 5).intersect(Interval(5, 8)) is None
        assert Interval(0, 5).intersect(Interval(7, 8)) is None

    def test_shift(self):
        assert Interval(2, 5).shift(3) == Interval(5, 8)

    def test_expand_clamps_left(self):
        assert Interval(2, 5).expand(4) == Interval(0, 9)
        assert Interval(2, 5).expand(1, 2) == Interval(1, 7)

    def test_clip(self):
        assert Interval(0, 10).clip(Interval(3, 6)) == Interval(3, 6)
        assert Interval(0, 2).clip(Interval(5, 6)) is None

    @given(intervals, intervals)
    def test_intersect_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(intervals, intervals)
    def test_intersect_contained(self, a, b):
        got = a.intersect(b)
        if got is not None:
            assert a.contains(got) and b.contains(got)


class TestMergeIntervals:
    def test_merges_overlapping(self):
        got = merge_intervals([Interval(0, 5), Interval(3, 8)])
        assert got == [Interval(0, 8)]

    def test_merges_touching(self):
        got = merge_intervals([Interval(0, 5), Interval(5, 8)])
        assert got == [Interval(0, 8)]

    def test_keeps_disjoint(self):
        got = merge_intervals([Interval(6, 8), Interval(0, 5)])
        assert got == [Interval(0, 5), Interval(6, 8)]

    def test_drops_empty(self):
        assert merge_intervals([Interval(3, 3)]) == []

    @given(interval_lists)
    def test_result_sorted_disjoint(self, ivs):
        merged = merge_intervals(ivs)
        for a, b in zip(merged, merged[1:]):
            assert a.end < b.start

    @given(interval_lists)
    def test_preserves_coverage(self, ivs):
        merged = merge_intervals(ivs)
        points = {p for iv in ivs for p in range(iv.start, iv.end)}
        merged_points = {p for iv in merged
                         for p in range(iv.start, iv.end)}
        assert points == merged_points


class TestComplement:
    def test_basic(self):
        got = complement_intervals([Interval(2, 4)], Interval(0, 10))
        assert got == [Interval(0, 2), Interval(4, 10)]

    def test_full_cover(self):
        assert complement_intervals([Interval(0, 10)],
                                    Interval(0, 10)) == []

    def test_empty_input(self):
        assert complement_intervals([], Interval(3, 7)) == [Interval(3, 7)]

    def test_clips_outside(self):
        got = complement_intervals([Interval(0, 100)], Interval(10, 20))
        assert got == []

    @given(interval_lists, intervals)
    def test_partition_property(self, ivs, within):
        gaps = complement_intervals(ivs, within)
        covered = {p for iv in merge_intervals(ivs)
                   for p in range(iv.start, iv.end)}
        gap_points = {p for g in gaps for p in range(g.start, g.end)}
        within_points = set(range(within.start, within.end))
        assert gap_points == within_points - covered


class TestIntersectSets:
    def test_basic(self):
        got = intersect_interval_sets([Interval(0, 10)],
                                      [Interval(5, 15), Interval(20, 25)])
        assert got == [Interval(5, 10)]

    @given(interval_lists, interval_lists)
    def test_pointwise(self, left, right):
        got = intersect_interval_sets(left, right)
        lp = {p for iv in left for p in range(iv.start, iv.end)}
        rp = {p for iv in right for p in range(iv.start, iv.end)}
        gp = {p for iv in got for p in range(iv.start, iv.end)}
        assert gp == (lp & rp)


class TestTotalLength:
    def test_counts_overlap_once(self):
        assert total_length([Interval(0, 5), Interval(3, 8)]) == 8


class TestSpan:
    def test_text_of(self):
        span = Span("doc", 4, 9)
        assert span.text_of("the quick brown") == "quick"

    def test_shift_and_reanchor(self):
        span = Span("a", 2, 5)
        assert span.shift(3) == Span("a", 5, 8)
        assert span.shift(0, did="b") == Span("b", 2, 5)

    def test_contains_requires_same_doc(self):
        assert Span("a", 0, 10).contains(Span("a", 2, 5))
        assert not Span("a", 0, 10).contains(Span("b", 2, 5))

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Span("a", 5, 3)

    def test_interval_view(self):
        assert Span("a", 1, 4).interval == Interval(1, 4)
        assert len(Span("a", 1, 4)) == 3
