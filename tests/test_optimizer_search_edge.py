"""Edge cases of Algorithm 1 and the statistics machinery."""

import pytest

from repro.extractors import make_task
from repro.matchers.base import DN_NAME, RU_NAME, ST_NAME, UD_NAME
from repro.optimizer.search import _chain_plans, search_plan
from repro.optimizer.stats import collect_statistics
from repro.plan import compile_program, find_units, partition_chains

from tests.test_optimizer import synthetic_stats


@pytest.fixture(scope="module")
def single_unit_setup():
    task = make_task("talk", work_scale=0)
    plan = compile_program(task.program, task.registry)
    units = find_units(plan)
    return plan, units, partition_chains(units)


@pytest.fixture(scope="module")
def award_setup():
    task = make_task("award", work_scale=0)
    plan = compile_program(task.program, task.registry)
    units = find_units(plan)
    return plan, units, partition_chains(units)


class TestChainPlanFamily:
    def test_single_unit_chain_has_three_plans(self, single_unit_setup):
        _, _, chains = single_unit_setup
        plans = _chain_plans(chains[0])
        # all-DN, ST@1, UD@1
        assert len(plans) == 3
        flavors = {tuple(sorted(set(p.values()))) for p in plans}
        assert (DN_NAME,) in flavors

    def test_family_size_is_2k_plus_1(self, award_setup):
        _, _, chains = award_setup
        for chain in chains:
            assert len(_chain_plans(chain)) == 2 * len(chain) + 1

    def test_ru_only_above_expensive(self, award_setup):
        _, _, chains = award_setup
        chain = max(chains, key=len)
        for plan in _chain_plans(chain):
            saw_expensive = False
            # chain.units is top-down: walk bottom-up.
            for unit in reversed(chain.units):
                name = plan[unit.uid]
                if name in (ST_NAME, UD_NAME):
                    saw_expensive = True
                elif name == RU_NAME:
                    assert saw_expensive, "RU below the expensive matcher"


class TestSearchEdgeCases:
    def test_single_unit_program(self, single_unit_setup):
        _, units, chains = single_unit_setup
        stats = synthetic_stats(units, extract_rate=1e-3)
        result = search_plan(units, stats, chains)
        assert len(result.assignment.matchers) == 1

    def test_six_unit_program_covers_everything(self, award_setup):
        _, units, chains = award_setup
        stats = synthetic_stats(units, extract_rate=1e-4)
        result = search_plan(units, stats, chains)
        assert set(result.assignment.matchers) == {u.uid for u in units}
        assert result.considered >= sum(2 * len(c) + 1 for c in chains)

    def test_zero_f_prefers_dn(self, award_setup):
        """Nothing shared with the previous snapshot: matching can't
        help, so the search must settle on from-scratch plans."""
        _, units, chains = award_setup
        stats = synthetic_stats(units, extract_rate=1e-3, f=0.0)
        result = search_plan(units, stats, chains)
        # With f=0 every plan costs the same extraction; DN is among
        # the cheapest because it skips matcher I/O terms.
        assert result.estimated_cost > 0


class TestStatisticsFallback:
    def test_without_capture_profiles_previous_pages(self):
        from repro.corpus import wikipedia_corpus

        task = make_task("play", work_scale=0)
        plan = compile_program(task.program, task.registry)
        units = find_units(plan)
        snaps = list(wikipedia_corpus(n_pages=6, seed=5).snapshots(2))
        stats = collect_statistics(plan, units, snaps[1], [snaps[0]],
                                   sample_size=4)
        for est in stats.units.values():
            assert est.a >= 0
            assert est.a_prev >= 0
