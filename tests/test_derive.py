"""Copy/extraction-region derivation: the α/β safety logic.

The end-to-end Theorem 1 tests live in test_engine.py; these tests pin
down the derivation mechanics — zone shrinking, boundary alignment,
gap separation, extraction-region expansion, and the fresh-mention
filter."""

import pytest

from repro.reuse.files import InputTuple, OutputTuple, encode_fields
from repro.reuse.regions import dedupe_extensions, derive_reuse, extraction_keep
from repro.text.regions import MatchSegment
from repro.text.span import Interval, Span


def make_inputs(*intervals):
    return {i: InputTuple(i, "q", iv.start, iv.end)
            for i, iv in enumerate(intervals)}


def out_tuple(itid, start, end, tid=0):
    return OutputTuple(tid, itid,
                       encode_fields({"v": Span("q", start, end)}))


class TestCopyZones:
    def test_interior_zone_shrinks_by_beta(self):
        q_inputs = make_inputs(Interval(0, 100))
        segs = [MatchSegment(20, 30, 40, 0)]  # p[20:60] == q[30:70]
        got = derive_reuse(Interval(0, 100), "p", segs, q_inputs, {},
                           alpha=10, beta=5)
        (zone,) = got.copy_zones
        assert zone.zone == Interval(25, 55)
        assert zone.shift == -10

    def test_aligned_zone_keeps_edges(self):
        q_inputs = make_inputs(Interval(0, 50))
        segs = [MatchSegment(0, 0, 50, 0)]  # full region match
        got = derive_reuse(Interval(0, 50), "p", segs, q_inputs, {},
                           alpha=10, beta=5)
        (zone,) = got.copy_zones
        assert zone.zone == Interval(0, 50)
        assert got.extraction_regions == []

    def test_partial_alignment_only_shrinks_unaligned_edge(self):
        q_inputs = make_inputs(Interval(0, 100))
        # Left-aligned on both sides, ends mid-region.
        segs = [MatchSegment(0, 0, 60, 0)]
        got = derive_reuse(Interval(0, 100), "p", segs, q_inputs, {},
                           alpha=10, beta=5)
        (zone,) = got.copy_zones
        assert zone.zone == Interval(0, 55)

    def test_fake_alignment_rejected(self):
        # Match touches the p region's start but not the q region's:
        # edge mentions must not be treated as safely clipped.
        q_inputs = make_inputs(Interval(10, 110))
        segs = [MatchSegment(0, 20, 60, 0)]
        got = derive_reuse(Interval(0, 100), "p", segs, q_inputs, {},
                           alpha=10, beta=5)
        (zone,) = got.copy_zones
        assert zone.zone.start == 5  # shrunk despite touching p start

    def test_zone_separation_enforced(self):
        q_inputs = make_inputs(Interval(0, 200))
        # Two adjacent matches with beta=0 would produce touching zones.
        segs = [MatchSegment(0, 0, 50, 0), MatchSegment(50, 100, 50, 0)]
        got = derive_reuse(Interval(0, 100), "p", segs, q_inputs, {},
                           alpha=10, beta=0)
        zones = [z.zone for z in got.copy_zones]
        assert len(zones) == 2
        assert zones[0].end < zones[1].start  # at least 1 char apart

    def test_too_short_match_gives_no_zone(self):
        q_inputs = make_inputs(Interval(0, 100))
        segs = [MatchSegment(40, 40, 8, 0)]
        got = derive_reuse(Interval(0, 100), "p", segs, q_inputs, {},
                           alpha=10, beta=5)
        assert got.copy_zones == []


class TestCopying:
    def test_copies_interior_mention(self):
        q_inputs = make_inputs(Interval(0, 100))
        q_outputs = {0: [out_tuple(0, 40, 45)]}
        segs = [MatchSegment(10, 30, 40, 0)]  # q[30:70] -> p[10:50]
        got = derive_reuse(Interval(0, 100), "p", segs, q_inputs,
                           q_outputs, alpha=10, beta=3)
        assert len(got.copied) == 1
        assert got.copied[0]["v"] == Span("p", 20, 25)

    def test_rejects_mention_near_match_edge(self):
        q_inputs = make_inputs(Interval(0, 100))
        q_outputs = {0: [out_tuple(0, 30, 35)]}  # at match start
        segs = [MatchSegment(10, 30, 40, 0)]
        got = derive_reuse(Interval(0, 100), "p", segs, q_inputs,
                           q_outputs, alpha=10, beta=3)
        assert got.copied == []

    def test_copies_edge_mention_when_aligned(self):
        q_inputs = make_inputs(Interval(0, 50))
        q_outputs = {0: [out_tuple(0, 0, 5)]}
        segs = [MatchSegment(0, 0, 50, 0)]
        got = derive_reuse(Interval(0, 50), "p", segs, q_inputs,
                           q_outputs, alpha=10, beta=8)
        assert got.copied == [{"v": Span("p", 0, 5)}]

    def test_spanless_output_needs_full_region_match(self):
        q_inputs = make_inputs(Interval(0, 50))
        spanless = OutputTuple(0, 0, encode_fields({"n": 42}))
        segs_full = [MatchSegment(0, 0, 50, 0)]
        got = derive_reuse(Interval(0, 50), "p", segs_full, q_inputs,
                           {0: [spanless]}, alpha=10, beta=2)
        assert got.copied == [{"n": 42}]
        segs_partial = [MatchSegment(0, 0, 30, 0)]
        got = derive_reuse(Interval(0, 50), "p", segs_partial, q_inputs,
                           {0: [spanless]}, alpha=10, beta=2)
        assert got.copied == []

    def test_outputs_of_other_inputs_not_copied(self):
        q_inputs = make_inputs(Interval(0, 50), Interval(50, 100))
        q_outputs = {1: [out_tuple(1, 60, 65)]}
        segs = [MatchSegment(0, 0, 50, 0)]  # matches input 0 only
        got = derive_reuse(Interval(0, 50), "p", segs, q_inputs,
                           q_outputs, alpha=10, beta=2)
        assert got.copied == []


class TestExtractionRegions:
    def test_gap_expanded_by_alpha_plus_beta(self):
        q_inputs = make_inputs(Interval(0, 200))
        segs = [MatchSegment(0, 0, 40, 0), MatchSegment(80, 80, 120, 0)]
        got = derive_reuse(Interval(0, 200), "p", segs, q_inputs, {},
                           alpha=7, beta=3)
        # Zones: [0,37) and [83,200); gap [37,83) grown by 10 each side.
        assert got.extraction_regions == [Interval(27, 93)]

    def test_no_matches_yields_whole_region(self):
        got = derive_reuse(Interval(10, 90), "p", [], {}, {},
                           alpha=5, beta=2)
        assert got.extraction_regions == [Interval(10, 90)]

    def test_expansion_clipped_to_region(self):
        # q region extends past the match, so the right edge is not
        # aligned: zone = [0, 95), and the 5-char tail gap blows up to
        # the whole region under a page-scale alpha.
        q_inputs = make_inputs(Interval(0, 120))
        segs = [MatchSegment(0, 0, 100, 0)]
        got = derive_reuse(Interval(0, 100), "p", segs, q_inputs, {},
                           alpha=1000, beta=5)
        assert got.extraction_regions == [Interval(0, 100)]

    def test_fully_aligned_match_means_nothing_to_extract(self):
        q_inputs = make_inputs(Interval(0, 100))
        segs = [MatchSegment(0, 0, 100, 0)]
        got = derive_reuse(Interval(0, 100), "p", segs, q_inputs, {},
                           alpha=1000, beta=5)
        assert got.extraction_regions == []

    def test_segments_clipped_to_candidate(self):
        # A matcher bug handing back an oversized segment must not
        # leak reuse outside the recorded q region.
        q_inputs = make_inputs(Interval(20, 60))
        segs = [MatchSegment(0, 0, 100, 0)]
        got = derive_reuse(Interval(0, 100), "p", segs, q_inputs, {},
                           alpha=5, beta=2)
        (zone,) = got.copy_zones
        assert zone.zone.start >= 22 and zone.zone.end <= 58


class TestExtractionKeep:
    def test_interior_kept(self):
        assert extraction_keep((50, 55), Interval(40, 70),
                               Interval(0, 100), beta=5)

    def test_window_crossing_er_edge_dropped(self):
        assert not extraction_keep((42, 47), Interval(40, 70),
                                   Interval(0, 100), beta=5)

    def test_er_edge_at_region_edge_kept(self):
        assert extraction_keep((2, 7), Interval(0, 70),
                               Interval(0, 100), beta=5)

    def test_spanless_requires_full_region(self):
        assert extraction_keep(None, Interval(0, 100),
                               Interval(0, 100), beta=5)
        assert not extraction_keep(None, Interval(0, 50),
                                   Interval(0, 100), beta=5)


class TestDedupe:
    def test_removes_identical_extensions(self):
        a = {"v": Span("p", 0, 5)}
        b = {"v": Span("p", 0, 5)}
        c = {"v": Span("p", 1, 6)}
        assert dedupe_extensions([a, b, c]) == [a, c]

    def test_keeps_scalar_distinctions(self):
        a = {"v": Span("p", 0, 5), "n": 1}
        b = {"v": Span("p", 0, 5), "n": 2}
        assert len(dedupe_extensions([a, b])) == 2
