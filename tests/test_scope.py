"""Page-matching scope: same-URL and fingerprint-based pairing."""

import pytest

from repro.core.noreuse import NoReuseSystem
from repro.core.runner import canonical_results
from repro.corpus.snapshot import Snapshot, snapshot_from_texts
from repro.extractors import make_task
from repro.plan import compile_program, find_units
from repro.reuse import (
    FingerprintScope,
    PlanAssignment,
    ReuseEngine,
    SameUrlScope,
    shingle_sketch,
    sketch_similarity,
)
from repro.text.document import Page


class TestSketch:
    def test_identical_texts_similarity_one(self):
        text = "the quick brown fox jumps over the lazy dog" * 4
        a = shingle_sketch(text)
        assert sketch_similarity(a, a) == 1.0

    def test_disjoint_texts_similarity_zero(self):
        a = shingle_sketch("aaaaaaaaaaaaaaaaaaaaaaaaaaaaa aaaa aaaa")
        b = shingle_sketch("zzzzzzzzzzzzzzzzzzzzzzzzzzzzz zzzz zzzz")
        assert sketch_similarity(a, b) == 0.0

    def test_small_edit_high_similarity(self):
        base = " ".join(f"line number {i} with content" for i in range(30))
        edited = base.replace("number 7", "number 777")
        sim = sketch_similarity(shingle_sketch(base),
                                shingle_sketch(edited))
        assert sim > 0.7

    def test_short_text(self):
        assert shingle_sketch("") == ()
        assert len(shingle_sketch("hi")) == 1


class TestSameUrlScope:
    def test_pairs_by_url(self):
        prev = snapshot_from_texts(0, {"a": "xxx", "b": "yyy"})
        scope = SameUrlScope()
        scope.begin_snapshot(prev)
        assert scope.pair_for(Page.from_url("a", "zzz")).text == "xxx"
        assert scope.pair_for(Page.from_url("new", "zzz")) is None

    def test_no_previous_snapshot(self):
        scope = SameUrlScope()
        scope.begin_snapshot(None)
        assert scope.pair_for(Page.from_url("a", "x")) is None


PAGE_TEXT = ("header line\n"
             "== Body ==\n" +
             "\n".join(f"Ana likes tea number {i}." for i in range(12)) +
             "\n")


class TestFingerprintScope:
    def test_renamed_page_paired(self):
        prev = snapshot_from_texts(0, {"old-url": PAGE_TEXT,
                                       "other": "something else entirely"})
        scope = FingerprintScope(min_similarity=0.5)
        scope.begin_snapshot(prev)
        got = scope.pair_for(Page.from_url("new-url", PAGE_TEXT))
        assert got is not None and got.url == "old-url"
        assert scope.fallback_pairs == 1

    def test_dissimilar_page_not_paired(self):
        prev = snapshot_from_texts(0, {"old-url": PAGE_TEXT})
        scope = FingerprintScope(min_similarity=0.5)
        scope.begin_snapshot(prev)
        assert scope.pair_for(
            Page.from_url("new", "completely different words here")) is None

    def test_previous_page_claimed_once(self):
        prev = snapshot_from_texts(0, {"old-url": PAGE_TEXT})
        scope = FingerprintScope(min_similarity=0.5)
        scope.begin_snapshot(prev)
        first = scope.pair_for(Page.from_url("n1", PAGE_TEXT))
        second = scope.pair_for(Page.from_url("n2", PAGE_TEXT))
        assert first is not None
        assert second is None

    def test_same_url_still_preferred(self):
        prev = snapshot_from_texts(0, {"u": PAGE_TEXT})
        scope = FingerprintScope()
        scope.begin_snapshot(prev)
        got = scope.pair_for(Page.from_url("u", PAGE_TEXT + "extra"))
        assert got.url == "u"
        assert scope.fallback_pairs == 0

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            FingerprintScope(min_similarity=0.0)


def make_play_engine(scope):
    task = make_task("play", work_scale=0)
    plan = compile_program(task.program, task.registry)
    units = find_units(plan)
    assignment = PlanAssignment({
        units[0].uid: "UD", **{u.uid: "RU" for u in units[1:]}})
    return plan, ReuseEngine(plan, units, assignment, scope=scope)


ACTOR_PAGE = ("Nina Weber is a film actor.\n"
              "== Filmography ==\n"
              "Nina Weber starred as Dr. Malone in Crimson Harbor (1999).\n"
              "Nina Weber starred as Sister Agnes in Velvet Empire (2003).\n"
              "== Awards ==\n"
              "Nina Weber won the BAFTA Award for Velvet Empire (2004).\n")


class TestEngineWithFingerprintScope:
    def test_renamed_page_reuses_and_stays_correct(self, tmp_path):
        s0 = snapshot_from_texts(0, {"site/nina-weber": ACTOR_PAGE})
        # The page moves to a new URL with a tiny edit.
        s1 = snapshot_from_texts(1, {
            "site/people/nina-weber": ACTOR_PAGE.replace("(1999)", "(1998)")})

        plan, engine = make_play_engine(FingerprintScope())
        d0, d1 = str(tmp_path / "0"), str(tmp_path / "1")
        engine.run_snapshot(s0, None, None, d0)
        result = engine.run_snapshot(s1, s0, d0, d1)

        copied = sum(s.copied_tuples for s in result.unit_stats.values())
        assert copied > 0, "renamed page should still recycle results"
        expected = NoReuseSystem(plan).process(s1)
        assert canonical_results(result) == canonical_results(expected)

    def test_same_url_scope_gets_no_reuse_on_rename(self, tmp_path):
        s0 = snapshot_from_texts(0, {"site/nina-weber": ACTOR_PAGE})
        s1 = snapshot_from_texts(1, {"site/people/nina-weber": ACTOR_PAGE})

        plan, engine = make_play_engine(SameUrlScope())
        d0, d1 = str(tmp_path / "0"), str(tmp_path / "1")
        engine.run_snapshot(s0, None, None, d0)
        result = engine.run_snapshot(s1, s0, d0, d1)
        assert all(s.copied_tuples == 0
                   for s in result.unit_stats.values())
