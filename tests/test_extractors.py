"""Extractor base machinery and the rule-based blackboxes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extractors.base import Extraction, Extractor, RelSpan, profiling_mode
from repro.extractors.rules import (
    DictionaryExtractor,
    LineExtractor,
    RegexExtractor,
    SectionExtractor,
    SentenceExtractor,
    scan_overlapping,
)


class TestRelSpanAndExtraction:
    def test_relspan_shift(self):
        assert RelSpan(2, 5).shift(3) == RelSpan(5, 8)
        assert len(RelSpan(2, 5)) == 3

    def test_relspan_rejects_inverted(self):
        with pytest.raises(ValueError):
            RelSpan(5, 2)

    def test_extent_hull(self):
        ext = Extraction.of(a=RelSpan(10, 15), b=RelSpan(2, 6), n=7)
        assert ext.extent() == (2, 15)

    def test_extent_none_without_spans(self):
        assert Extraction.of(n=7).extent() is None

    def test_shift_moves_spans_only(self):
        ext = Extraction.of(a=RelSpan(1, 3), n=7).shift(10)
        assert ext.get("a") == RelSpan(11, 13)
        assert ext.get("n") == 7

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            Extraction.of(a=RelSpan(0, 1)).get("zzz")

    def test_span_items(self):
        ext = Extraction.of(a=RelSpan(0, 2), n=5)
        assert ext.span_items() == [("a", RelSpan(0, 2))]


class BoomExtractor(Extractor):
    """Emits a fixed oversized extraction to test scope enforcement."""

    def __init__(self):
        super().__init__("boom", ["v"], scope=5, context=0)

    def _extract(self, text):
        yield Extraction.of(v=RelSpan(0, len(text)))


class TestExtractorBase:
    def test_scope_violation_raises(self):
        with pytest.raises(ValueError, match="scope"):
            BoomExtractor().extract("0123456789")

    def test_scope_ok_under_limit(self):
        assert len(BoomExtractor().extract("abc")) == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RegexExtractor("x", "a", groups={}, scope=0, context=1)
        with pytest.raises(ValueError):
            RegexExtractor("x", "a", groups={}, scope=5, context=-1)

    def test_burn_deterministic_and_skippable(self):
        ex = RegexExtractor("x", "zzz", groups={}, scope=5, context=1,
                            work_factor=3)
        assert ex._burn("hello") == ex._burn("hello")
        with profiling_mode():
            assert ex._burn("hello") == 0

    def test_profiling_mode_restores(self):
        ex = RegexExtractor("x", "zzz", groups={}, scope=5, context=1,
                            work_factor=1)
        with profiling_mode():
            pass
        assert ex._burn("a") != 0 or ex.work_factor == 0


class TestScanOverlapping:
    def test_finds_overlapping_matches(self):
        import re
        pattern = re.compile(r"aa")
        starts = [m.start() for m in scan_overlapping(pattern, "aaaa")]
        assert starts == [0, 1, 2]

    def test_position_determinism_under_truncation(self):
        """A match at position x is found iff the pattern matches at x,
        regardless of other matches — the property region reuse needs."""
        import re
        pattern = re.compile(r"ab+")
        text = "xabbxabbbx"
        full = {(m.start(), m.end()) for m in scan_overlapping(pattern, text)}
        sub = {(m.start() + 4, m.end() + 4)
               for m in scan_overlapping(pattern, text[4:])}
        assert sub <= full


class TestRegexExtractor:
    def test_groups_become_spans(self):
        ex = RegexExtractor(
            "chair", r"(?P<p>[A-Z][a-z]+) chairs (?P<c>[A-Z]+)",
            groups={"p": "p", "c": "c"}, scope=60, context=4)
        got = ex.extract("Alice chairs SIGMOD today")
        assert len(got) == 1
        assert got[0].get("p") == RelSpan(0, 5)
        assert got[0].get("c") == RelSpan(13, 19)

    def test_scalar_outputs(self):
        ex = RegexExtractor(
            "gross", r"\$(?P<m>\d+)M of (?P<t>[a-z]+)",
            groups={"t": "t"},
            scalars={"m": lambda m: int(m.group("m"))},
            scope=40, context=4)
        got = ex.extract("made $120M of profit")
        assert got[0].get("m") == 120

    def test_optional_group_missing_skips(self):
        ex = RegexExtractor("opt", r"a(?P<x>b)?c",
                            groups={"x": "x"}, scope=10, context=2)
        got = ex.extract("ac abc")
        assert len(got) == 1  # the "ac" match has no group x


class TestDictionaryExtractor:
    def test_finds_phrases(self):
        ex = DictionaryExtractor("topics", "t",
                                 ["data mining", "indexing"],
                                 scope=30, context=2)
        got = ex.extract("on data mining and indexing tricks")
        texts = sorted(
            ("on data mining and indexing tricks"[s.start:s.end])
            for _, s in [e.span_items()[0] for e in got])
        assert texts == ["data mining", "indexing"]

    def test_prefers_longest_phrase(self):
        ex = DictionaryExtractor("t", "t", ["data", "data mining"],
                                 scope=30, context=2)
        got = ex.extract("data mining")
        spans = {e.get("t") for e in got}
        assert RelSpan(0, 11) in spans

    def test_case_insensitive(self):
        ex = DictionaryExtractor("t", "t", ["sigmod"], scope=20,
                                 context=2, ignore_case=True)
        assert len(ex.extract("at SIGMOD 2009")) == 1

    def test_rejects_empty_dictionary(self):
        with pytest.raises(ValueError):
            DictionaryExtractor("t", "t", [], scope=10, context=1)


class TestLineExtractor:
    def test_extracts_matching_lines(self):
        ex = LineExtractor("l", "v", scope=100, must_contain="chair")
        text = "intro\nBob is demo chair of X.\nclosing"
        got = ex.extract(text)
        assert len(got) == 1
        span = got[0].get("v")
        assert text[span.start:span.end] == "Bob is demo chair of X."

    def test_skips_blank_and_long_lines(self):
        ex = LineExtractor("l", "v", scope=10)
        got = ex.extract("\n\nshort\n" + "x" * 50 + "\nok\n")
        texts = {"short", "ok"}
        found = {e.get("v") for e in got}
        assert len(found) == len(texts)

    def test_regex_filter(self):
        ex = LineExtractor("l", "v", scope=100, must_match=r"\d{4}")
        got = ex.extract("no year here\nSIGMOD 2009 rocks\n")
        assert len(got) == 1


class TestSectionExtractor:
    TEXT = ("Header line\n"
            "== Awards ==\n"
            "first award line\nsecond award line\n"
            "== Other ==\n"
            "tail\n")

    def test_extracts_section_body(self):
        ex = SectionExtractor("s", "v", "Awards", scope=500)
        got = ex.extract(self.TEXT)
        assert len(got) == 1
        span = got[0].get("v")
        assert self.TEXT[span.start:span.end] == (
            "first award line\nsecond award line")

    def test_last_section_runs_to_end(self):
        ex = SectionExtractor("s", "v", "Other", scope=500)
        got = ex.extract(self.TEXT)
        span = got[0].get("v")
        assert self.TEXT[span.start:span.end] == "tail"

    def test_missing_section(self):
        ex = SectionExtractor("s", "v", "Nothing", scope=500)
        assert ex.extract(self.TEXT) == []

    def test_truncates_at_scope(self):
        ex = SectionExtractor("s", "v", "Awards", scope=10)
        got = ex.extract(self.TEXT)
        span = got[0].get("v")
        assert len(span) == 9


class TestSentenceExtractor:
    def test_splits_sentences(self):
        ex = SentenceExtractor("s", "v")
        text = "First one. Second one! Third?"
        got = ex.extract(text)
        sents = [text[e.get("v").start:e.get("v").end] for e in got]
        assert sents == ["First one.", "Second one!", "Third?"]

    def test_skips_newline_spanning(self):
        ex = SentenceExtractor("s", "v")
        got = ex.extract("line one\nline two.")
        sents = [e.get("v") for e in got]
        assert len(sents) == 1


@settings(max_examples=30, deadline=None)
@given(st.text(alphabet="ab .\nX", min_size=0, max_size=200))
def test_sentence_extractor_never_crashes(text):
    SentenceExtractor("s", "v").extract(text)
