"""Internals of the learning substrate and DelexSystem.resume edges."""

import pytest

from repro.extractors.learning import (
    _bio_labels,
    _field_training_sentences,
    _me_features,
    _me_training_text,
    _token_features,
    _TOKEN_RE,
)


class TestMETrainingData:
    def test_boundaries_are_delimiters(self):
        text, boundaries = _me_training_text(seed=3, n_lines=40)
        for pos in boundaries:
            assert text[pos] in ".!?\n"

    def test_deterministic(self):
        assert _me_training_text(seed=5) == _me_training_text(seed=5)

    def test_features_at_text_edges(self):
        feats = _me_features("a.", 1)
        assert any(f.startswith("R1=") for f in feats)
        assert "cur=." in feats


class TestTokenFeatures:
    def test_shape_features(self):
        tokens = ["Born", "Alice", "on", "July", "9,", "1956."]
        feats = _token_features(tokens, 3)
        assert "shape=Month" in feats
        assert "prev=on" in feats

    def test_edge_tokens(self):
        feats_first = _token_features(["Only"], 0)
        assert "prev_shape=^" in feats_first
        assert "next_shape=$" in feats_first


class TestBIOLabels:
    def run(self, text, targets):
        tokens = list(_TOKEN_RE.finditer(text))
        return _bio_labels(text, tokens, targets)

    def test_single_target(self):
        text = "Born Alice Chen today."
        labels = self.run(text, [(5, 15)])  # "Alice Chen"
        assert labels == ["O", "B", "I", "O"]

    def test_no_targets(self):
        assert self.run("just filler words", []) == ["O", "O", "O"]

    def test_punctuation_trimming_repair(self):
        # A target whose first token falls outside but later tokens
        # inside must not produce I-after-O.
        text = "x Alice Chen."
        labels = self.run(text, [(2, 12)])
        for prev, cur in zip(["O"] + labels, labels):
            assert not (cur == "I" and prev == "O")


class TestFieldTrainingData:
    @pytest.mark.parametrize("field", ["name", "birth_name",
                                       "birth_date", "roles"])
    def test_contains_positives_and_negatives(self, field):
        data = _field_training_sentences(field, seed=2, count=60)
        positives = [t for t in data if t[1]]
        negatives = [t for t in data if not t[1]]
        assert positives and negatives
        for text, targets in positives:
            for s, e in targets:
                assert 0 <= s < e <= len(text)

    def test_unknown_field(self):
        with pytest.raises(ValueError):
            _field_training_sentences("bogus", seed=1, count=4)


class TestDelexResumeEdges:
    def test_rejects_negative_serial(self, tmp_path):
        from repro.core.delex import DelexSystem
        from repro.extractors import make_task

        system = DelexSystem(make_task("play", work_scale=0),
                             str(tmp_path))
        with pytest.raises(ValueError):
            system.resume([], None, -1)

    def test_rejects_missing_capture_dir(self, tmp_path):
        from repro.core.delex import DelexSystem
        from repro.extractors import make_task

        system = DelexSystem(make_task("play", work_scale=0),
                             str(tmp_path))
        with pytest.raises(ValueError, match="missing"):
            system.resume([], str(tmp_path / "nope"), 1)

    def test_resume_with_no_prev_dir_bootstraps(self, tmp_path):
        from repro.core.delex import DelexSystem
        from repro.corpus import wikipedia_corpus
        from repro.extractors import make_task

        snaps = list(wikipedia_corpus(n_pages=5, seed=9).snapshots(1))
        system = DelexSystem(make_task("play", work_scale=0),
                             str(tmp_path))
        system.resume([], None, 0)
        result = system.process(snaps[0])
        assert result.pages == len(snaps[0])
