"""The ``repro.adapt`` layer: drift simulator, detector, controller."""

import tempfile
from types import SimpleNamespace

import pytest

from repro.adapt import (
    ADAPT_MODES,
    AdaptConfig,
    AdaptObservation,
    AdaptiveDelexSystem,
    DriftDetector,
    DriftingCorpus,
    DRIFT_PROFILES,
    FactDilutionGenerator,
    PageHinkley,
    Regime,
    RegimeSchedule,
    TemplateVariantGenerator,
    drift_profile,
    should_switch,
)
from repro.core.runner import run_series
from repro.corpus.evolve import ChangeModel
from repro.corpus.generators import DBLifeGenerator
from repro.extractors import make_task
from repro.optimizer.stats import estimate_f
from repro.serve.views import MaterializedView, ViewConfig


def _series_bytes(corpus, n):
    return [tuple((p.url, p.text) for p in s.pages)
            for s in corpus.snapshots(n)]


# ---------------------------------------------------------------------------
# Drift simulator


class TestDriftSimulator:
    @pytest.mark.parametrize("profile", DRIFT_PROFILES)
    def test_profiles_deterministic_under_seed(self, profile):
        a = _series_bytes(drift_profile(profile, n_pages=6, seed=3), 4)
        b = _series_bytes(drift_profile(profile, n_pages=6, seed=3), 4)
        assert a == b

    def test_different_seeds_differ(self):
        a = _series_bytes(drift_profile("churn_burst", n_pages=6, seed=3), 4)
        b = _series_bytes(drift_profile("churn_burst", n_pages=6, seed=4), 4)
        assert a != b

    def test_shift_changes_the_series(self):
        stationary = _series_bytes(
            drift_profile("stationary", n_pages=6, seed=3, shift_at=2), 4)
        drifted = _series_bytes(
            drift_profile("redesign", n_pages=6, seed=3, shift_at=2), 4)
        # Identical up to the boundary, different after it.
        assert stationary[:2] == drifted[:2]
        assert stationary[2:] != drifted[2:]

    def test_regime_shifts_recorded(self):
        corpus = drift_profile("churn_burst", n_pages=6, seed=3, shift_at=2)
        list(corpus.snapshots(4))
        assert corpus.regime_shifts == [(2, "churn_burst")]

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            drift_profile("nope")

    def test_schedule_must_increase(self):
        with pytest.raises(ValueError):
            RegimeSchedule.of(Regime(at=3), Regime(at=2))
        with pytest.raises(ValueError):
            Regime(at=0)

    def test_redesign_keeps_urls(self):
        corpus = drift_profile("redesign", n_pages=6, seed=3, shift_at=2)
        snaps = list(corpus.snapshots(3))
        before = {p.url for p in snaps[1].pages}
        after = {p.url for p in snaps[2].pages}
        # A redesign rewrites content under existing URLs; the churn
        # model may add/remove a page or two, but history is kept.
        assert len(before & after) >= len(before) - 2

    def test_template_variant_adds_banner(self):
        import random
        gen = TemplateVariantGenerator(DBLifeGenerator(), banner="v2")
        page = gen.new_page(random.Random(0), "http://x/p1")
        assert "[v2]" in page.lines[0]

    def test_dilution_salt_makes_lines_unique(self):
        import random
        plain = FactDilutionGenerator(DBLifeGenerator(), dilution=1.0)
        salted = FactDilutionGenerator(DBLifeGenerator(), dilution=1.0,
                                       salt=True)
        rng = random.Random(0)
        kind = plain.page_kinds()[0]
        assert len({plain.new_line(rng, kind) for _ in range(40)}) < 40
        assert len({salted.new_line(rng, kind) for _ in range(40)}) == 40


# ---------------------------------------------------------------------------
# estimate_f


class TestEstimateF:
    def _deltas(self, *fractions):
        return [SimpleNamespace(fraction_with_previous=f)
                for f in fractions]

    def test_flat_is_the_default_and_averages(self):
        deltas = self._deltas(0.2, 0.4, 0.9)
        assert estimate_f(deltas) == pytest.approx(0.5)
        assert estimate_f(deltas, mode="flat") == estimate_f(deltas)

    def test_recency_weights_newest_most(self):
        rising = self._deltas(0.0, 0.0, 1.0)
        falling = self._deltas(1.0, 0.0, 0.0)
        assert estimate_f(rising, mode="recency") > 0.5
        assert estimate_f(falling, mode="recency") < 0.5
        # flat mode cannot tell these apart — the bug the recency
        # estimator exists to fix.
        assert estimate_f(rising) == estimate_f(falling)

    def test_recency_half_life_controls_decay(self):
        deltas = self._deltas(0.0, 1.0)
        sharp = estimate_f(deltas, mode="recency", half_life=0.5)
        soft = estimate_f(deltas, mode="recency", half_life=10.0)
        assert sharp > soft > 0.5

    def test_empty_and_bad_mode(self):
        assert estimate_f([]) == 0.0
        with pytest.raises(ValueError):
            estimate_f(self._deltas(0.5), mode="nope")


# ---------------------------------------------------------------------------
# Detection


class TestPageHinkley:
    def test_fires_on_mean_shift(self):
        ph = PageHinkley(delta=0.02, threshold=0.45)
        stream = [0.9, 0.91, 0.9, 0.89, 0.2, 0.21, 0.2]
        fired_at = next((i for i, x in enumerate(stream)
                         if ph.update(x)), None)
        assert fired_at is not None and fired_at >= 4

    def test_quiet_on_stationary_noise(self):
        ph = PageHinkley(delta=0.02, threshold=0.45)
        noise = [0.5, 0.52, 0.48, 0.51, 0.49, 0.5, 0.53, 0.47] * 4
        assert not any(ph.update(x) for x in noise)

    def test_reset_restores_quiet(self):
        ph = PageHinkley(delta=0.02, threshold=0.45)
        for x in (0.9, 0.9, 0.9, 0.1, 0.1, 0.1):
            ph.update(x)
        assert ph.score >= 1.0
        ph.reset()
        assert ph.score == 0.0
        assert not ph.update(0.1)


def _obs(index, f=1.0, unchanged=0.0, hit=0.0, spp=1.0):
    return AdaptObservation(
        snapshot_index=index, pages=10, f_obs=f,
        unchanged_fraction=unchanged, combined_hit_rate=hit,
        seconds_per_page=spp, match_seconds_per_page=0.0,
        extract_seconds_per_page=spp, observed_seconds=spp * 10)


class TestDriftDetector:
    def test_fires_on_regime_shift_names_channel(self):
        detector = DriftDetector(warmup=2)
        signal = None
        for i in range(8):
            shifted = i >= 4
            signal = detector.observe(
                _obs(i, unchanged=0.6 if shifted else 0.0))
            if signal is not None:
                break
        assert signal is not None
        assert "unchanged_fraction" in signal.channels
        assert signal.score >= 1.0

    def test_quiet_on_stationary_stream(self):
        detector = DriftDetector(warmup=2)
        wobble = (0.30, 0.33, 0.28, 0.31, 0.29, 0.32, 0.30, 0.31)
        assert all(detector.observe(_obs(i, unchanged=w)) is None
                   for i, w in enumerate(wobble))

    def test_warmup_suppresses_early_signal(self):
        detector = DriftDetector(warmup=10)
        for i in range(8):
            assert detector.observe(
                _obs(i, unchanged=0.9 if i >= 3 else 0.0)) is None

    def test_cost_residual_channel(self):
        values = AdaptObservation(
            snapshot_index=1, pages=10, f_obs=1.0,
            unchanged_fraction=0.0, combined_hit_rate=0.0,
            seconds_per_page=0.2, match_seconds_per_page=0.0,
            extract_seconds_per_page=0.2, observed_seconds=2.0,
            predicted_seconds=1.0).channel_values()
        assert values["cost_residual"] == pytest.approx(0.6931, abs=1e-3)
        assert "cost_residual" not in _obs(1).channel_values()


# ---------------------------------------------------------------------------
# Hysteresis and controller


class TestShouldSwitch:
    def test_requires_margin(self):
        assert should_switch(1.0, 0.5, 0.0, 0.05, 4.0)
        assert not should_switch(1.0, 0.97, 0.0, 0.05, 4.0)

    def test_requires_payback(self):
        # Win of 0.1/snapshot repays 0.2s sampling within 4 snapshots...
        assert should_switch(1.0, 0.9, 0.2, 0.05, 4.0)
        # ...but not 1.0s of sampling.
        assert not should_switch(1.0, 0.9, 1.0, 0.05, 4.0)

    def test_identical_plan_never_switches(self):
        assert not should_switch(1.0, 0.1, 0.0, 0.05, 4.0, differs=False)


class TestAdaptConfig:
    def test_from_flag(self):
        assert AdaptConfig.from_flag(None) is None
        assert AdaptConfig.from_flag("off") is None
        for mode in ADAPT_MODES:
            assert AdaptConfig.from_flag(mode).mode == mode
        config = AdaptConfig(mode="shadow")
        assert AdaptConfig.from_flag(config) is config
        with pytest.raises(ValueError):
            AdaptConfig.from_flag("sometimes")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            AdaptConfig(mode="maybe")


@pytest.fixture(scope="module")
def chair_fast():
    return make_task("chair", work_scale=0)


@pytest.fixture(scope="module")
def drifting_snaps():
    corpus = drift_profile("churn_burst", n_pages=8, seed=11, shift_at=2)
    return list(corpus.snapshots(5))


class TestAdaptiveController:
    def test_shadow_byte_identical_to_off(self, chair_fast,
                                          drifting_snaps):
        plain = run_series(chair_fast, drifting_snaps,
                           systems=("delex",), adapt=None)["delex"]
        shadow = run_series(chair_fast, drifting_snaps,
                            systems=("delex",), adapt="shadow")["delex"]
        for a, b in zip(plain.snapshots, shadow.snapshots):
            assert a.results == b.results

    def test_on_matches_from_scratch_reference(self, chair_fast,
                                               drifting_snaps):
        reports = run_series(chair_fast, drifting_snaps,
                             systems=("delex", "noreuse"), adapt="on")
        for a, b in zip(reports["delex"].snapshots,
                        reports["noreuse"].snapshots):
            assert a.results == b.results

    def test_static_mode_plans_exactly_once(self, chair_fast,
                                            drifting_snaps):
        with tempfile.TemporaryDirectory() as workdir:
            system = AdaptiveDelexSystem(
                chair_fast, workdir, adapt=AdaptConfig(mode="static"))
            for snapshot in drifting_snaps:
                system.process(snapshot)
            assert [d.action for d in system.decisions[:2]] == [
                "bootstrap", "initial_plan"]
            assert all(d.action == "keep"
                       for d in system.decisions[2:])
            assert system.replans == 0

    def test_cooldown_prevents_thrash(self, chair_fast, drifting_snaps):
        # A detector that fires on every observation is the worst case;
        # cooldown must still space replans apart.
        class Trigger(DriftDetector):
            def observe(self, obs):
                from repro.adapt.detect import DriftSignal
                return DriftSignal(obs.snapshot_index, 9.9,
                                   ("unchanged_fraction",), {})

        with tempfile.TemporaryDirectory() as workdir:
            system = AdaptiveDelexSystem(
                chair_fast, workdir,
                adapt=AdaptConfig(mode="on", warmup=0, cooldown=2),
                detector=Trigger())
            for snapshot in drifting_snaps:
                system.process(snapshot)
        replans = [d.snapshot_index for d in system.decisions
                   if d.action.startswith(("replan", "forced"))]
        assert replans, "the always-firing detector never replanned"
        assert all(b - a >= 2 for a, b in zip(replans, replans[1:]))

    def test_forced_replan_without_detector(self, chair_fast,
                                            drifting_snaps):
        with tempfile.TemporaryDirectory() as workdir:
            system = AdaptiveDelexSystem(
                chair_fast, workdir,
                adapt=AdaptConfig(mode="on", detect=False,
                                  force_replan_at=frozenset({3})))
            for snapshot in drifting_snaps:
                system.process(snapshot)
        actions = {d.snapshot_index: d.action for d in system.decisions}
        assert actions[3] in ("forced_replan", "replan_keep")
        assert system.detections == 0

    def test_shadow_never_switches(self, chair_fast, drifting_snaps):
        with tempfile.TemporaryDirectory() as workdir:
            system = AdaptiveDelexSystem(
                chair_fast, workdir,
                adapt=AdaptConfig(mode="shadow", warmup=1, cooldown=0))
            for snapshot in drifting_snaps:
                system.process(snapshot)
            assert system.switches == 0
            summary = system.summary()
            assert summary["mode"] == "shadow"
            assert summary["switches"] == 0


# ---------------------------------------------------------------------------
# Wiring: runner audit trail, serve


class TestWiring:
    def test_run_series_optimizer_doc(self, chair_fast, drifting_snaps):
        report = run_series(chair_fast, drifting_snaps,
                            systems=("delex",), adapt="on")["delex"]
        doc = report.snapshots[1].optimizer
        assert doc is not None
        assert set(doc["assignment"]) == set(chair_fast.blackboxes)
        stats = doc["statistics"]
        assert {"f", "m", "weights", "units"} <= set(stats)
        assert doc["sampled_at_snapshot"] == 1
        assert doc["adapt"]["action"] == "initial_plan"
        # Plain delex (adapt off) re-samples per snapshot and exposes
        # the same audit trail, minus the controller decision.
        plain = run_series(chair_fast, drifting_snaps,
                           systems=("delex",), adapt=None)["delex"]
        late = plain.snapshots[-1].optimizer
        assert late["sampled_at_snapshot"] == len(drifting_snaps) - 1
        assert "adapt" not in late

    def test_serve_view_adapt_summary(self, drifting_snaps, tmp_path):
        config = ViewConfig(name="chair", task="chair", system="delex",
                            work_scale=0.0, adapt="shadow")
        view = MaterializedView(config, str(tmp_path / "view"))
        for snapshot in drifting_snaps[:3]:
            view.apply_snapshot(snapshot)
        summary = view.adapt_summary()
        assert summary is not None and summary["mode"] == "shadow"
        assert view.describe()["adapt"] == summary
        assert config.to_dict()["adapt"] == "shadow"

    def test_view_config_rejects_bad_adapt(self):
        with pytest.raises(ValueError):
            ViewConfig(name="x", task="chair", adapt="never")
