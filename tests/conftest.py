"""Shared fixtures: small corpora and zero-cost tasks for fast tests."""

from __future__ import annotations

import pytest

from repro.corpus import dblife_corpus, wikipedia_corpus
from repro.extractors import make_task
from repro.plan import compile_program, find_units


@pytest.fixture(scope="session")
def dblife_snapshots():
    """Four snapshots of a small DBLife-like corpus."""
    return list(dblife_corpus(n_pages=16, seed=42,
                              p_unchanged=0.7).snapshots(4))


@pytest.fixture(scope="session")
def wikipedia_snapshots():
    """Four snapshots of a small Wikipedia-like corpus."""
    return list(wikipedia_corpus(n_pages=12, seed=42).snapshots(4))


def fast_task(name: str):
    """A library task with instantaneous extractors."""
    return make_task(name, work_scale=0)


@pytest.fixture(scope="session")
def play_task_fast():
    return fast_task("play")


@pytest.fixture(scope="session")
def chair_task_fast():
    return fast_task("chair")


@pytest.fixture(scope="session")
def play_plan(play_task_fast):
    return compile_program(play_task_fast.program, play_task_fast.registry)


@pytest.fixture(scope="session")
def play_units(play_plan):
    return find_units(play_plan)
