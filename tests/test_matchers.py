"""Matcher tests: DN, UD (Myers), ST (suffix automaton), RU, cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matchers import (
    DNMatcher,
    MatchCache,
    RUMatcher,
    STMatcher,
    SuffixAutomaton,
    UDMatcher,
    make_matcher,
    myers_lcs_pairs,
)
from repro.text.regions import MatchSegment
from repro.text.span import Interval


def whole(text):
    return Interval(0, len(text))


class TestDN:
    def test_always_empty(self):
        p, q = "same text", "same text"
        assert DNMatcher().match(p, whole(p), q, whole(q)) == []


class TestMyers:
    def test_identical(self):
        pairs = myers_lcs_pairs(list("abc"), list("abc"))
        assert pairs == [(0, 0), (1, 1), (2, 2)]

    def test_insertion(self):
        pairs = myers_lcs_pairs(list("ac"), list("abc"))
        assert pairs == [(0, 0), (1, 2)]

    def test_deletion(self):
        pairs = myers_lcs_pairs(list("abc"), list("ac"))
        assert pairs == [(0, 0), (2, 1)]

    def test_disjoint(self):
        assert myers_lcs_pairs(list("abc"), list("xyz")) == []

    def test_empty(self):
        assert myers_lcs_pairs([], list("ab")) == []
        assert myers_lcs_pairs(list("ab"), []) == []

    def test_capped_distance_falls_back(self):
        a = ["common"] + [f"a{i}" for i in range(20)] + ["tail"]
        b = ["common"] + [f"b{i}" for i in range(20)] + ["tail"]
        pairs = myers_lcs_pairs(a, b, max_d=4)
        assert (0, 0) in pairs  # prefix survives in the fallback

    @given(st.lists(st.sampled_from("abcd"), max_size=25),
           st.lists(st.sampled_from("abcd"), max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_pairs_form_valid_common_subsequence(self, a, b):
        pairs = myers_lcs_pairs(a, b)
        for (x1, y1), (x2, y2) in zip(pairs, pairs[1:]):
            assert x1 < x2 and y1 < y2
        for x, y in pairs:
            assert a[x] == b[y]

    @given(st.lists(st.sampled_from("abcd"), max_size=18),
           st.lists(st.sampled_from("abcd"), max_size=18))
    @settings(max_examples=40, deadline=None)
    def test_lcs_is_optimal(self, a, b):
        import difflib
        ours = len(myers_lcs_pairs(a, b))
        theirs = sum(block.size for block in
                     difflib.SequenceMatcher(a=a, b=b,
                                             autojunk=False)
                     .get_matching_blocks())
        # Myers finds a true LCS; difflib's is at most as long.
        assert ours >= theirs


class TestUDMatcher:
    def test_identical_pages_one_segment(self):
        text = "line one\nline two\nline three"
        got = UDMatcher().match(text, whole(text), text, whole(text))
        assert len(got) == 1
        assert got[0].length == len(text)

    def test_edit_in_middle(self):
        p = "aaa\nCHANGED\nccc"
        q = "aaa\nbbb\nccc"
        got = UDMatcher().match(p, whole(p), q, whole(q))
        assert all(seg.verify(p, q) for seg in got)
        covered = sum(s.length for s in got)
        assert covered >= 6  # both unchanged lines found

    def test_misses_moved_blocks(self):
        p = "bbb\naaa"
        q = "aaa\nbbb"
        got = UDMatcher().match(p, whole(p), q, whole(q))
        assert sum(s.length for s in got) <= 4  # only one side of the swap

    def test_segments_verify_on_regions(self):
        p = "xxx\nshared line\nyyy"
        q = "zzz\nshared line\nwww"
        got = UDMatcher().match(p, Interval(4, 15), q, Interval(4, 15))
        for seg in got:
            assert seg.verify(p, q)


class TestSuffixAutomaton:
    def test_recognizes_substrings(self):
        sam = SuffixAutomaton("abcbc")
        # Walk "cbc" through transitions.
        state = 0
        for ch in "cbc":
            assert ch in sam.next[state]
            state = sam.next[state][ch]

    def test_first_end_positions_consistent(self):
        text = "abab"
        sam = SuffixAutomaton(text)
        state = 0
        for i, ch in enumerate("ab"):
            state = sam.next[state][ch]
        end = sam.first_end[state]
        assert text[end - 1:end + 1] == "ab" or text[end] == "b"


class TestSTMatcher:
    def test_finds_moved_block(self):
        p = "BLOCKAAAA moved here tail"
        q = "head tail BLOCKAAAA stays"
        got = STMatcher(min_length=8).match(p, whole(p), q, whole(q))
        assert any("BLOCKAAAA" in p[s.p_start:s.p_start + s.length]
                   for s in got)
        for seg in got:
            assert seg.verify(p, q)

    def test_identical_full_match(self):
        text = "a shared piece of text that is long enough"
        got = STMatcher(min_length=8).match(text, whole(text),
                                            text, whole(text))
        assert max(s.length for s in got) == len(text)

    def test_min_length_suppresses_short(self):
        p = "abcdef z 123456"
        q = "abcdef y 123456"
        got = STMatcher(min_length=100).match(p, whole(p), q, whole(q))
        assert got == []

    def test_respects_regions(self):
        p = "junk COMMONTEXT junk"
        q = "pre COMMONTEXT post"
        got = STMatcher(min_length=6).match(p, Interval(5, 15),
                                            q, Interval(4, 14))
        for seg in got:
            assert Interval(5, 15).contains(seg.p_interval)
            assert Interval(4, 14).contains(seg.q_interval)
            assert seg.verify(p, q)

    def test_rejects_bad_min_length(self):
        with pytest.raises(ValueError):
            STMatcher(min_length=0)

    @given(st.text(alphabet="abn\n ", min_size=0, max_size=80),
           st.text(alphabet="abn\n ", min_size=0, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_all_segments_verify(self, p, q):
        got = STMatcher(min_length=3).match(p, whole(p), q, whole(q))
        for seg in got:
            assert seg.verify(p, q)


class TestRU:
    def test_empty_cache_behaves_like_dn(self):
        cache = MatchCache()
        got = RUMatcher(cache).match("abc", whole("abc"),
                                     "abc", whole("abc"))
        assert got == []

    def test_recycles_and_trims(self):
        p = "0123456789"
        q = "0123456789"
        cache = MatchCache()
        cache.record([MatchSegment(0, 0, 10)])
        got = RUMatcher(cache).match(p, Interval(2, 8), q, Interval(4, 9))
        assert len(got) == 1
        seg = got[0]
        assert Interval(2, 8).contains(seg.p_interval)
        assert Interval(4, 9).contains(seg.q_interval)
        assert seg.verify(p, q)

    def test_cache_clear(self):
        cache = MatchCache()
        cache.record([MatchSegment(0, 0, 5)])
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0


class TestFactory:
    def test_all_names(self):
        cache = MatchCache()
        for name in ("DN", "UD", "ST", "RU"):
            assert make_matcher(name, cache).name == name

    def test_ru_requires_cache(self):
        with pytest.raises(ValueError):
            make_matcher("RU")

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_matcher("XX", MatchCache())


@given(st.text(alphabet="abc\n", min_size=0, max_size=120),
       st.text(alphabet="abc\n", min_size=0, max_size=120))
@settings(max_examples=60, deadline=None)
def test_ud_segments_always_verify(p, q):
    got = UDMatcher().match(p, whole(p), q, whole(q))
    for seg in got:
        assert seg.verify(p, q)


class TestWinnowing:
    def test_identical_full_match(self):
        from repro.matchers import WinnowingMatcher
        text = "a long enough identical stretch of text for fingerprints"
        got = WinnowingMatcher().match(text, whole(text), text, whole(text))
        assert got and max(s.length for s in got) == len(text)

    def test_finds_moved_block(self):
        from repro.matchers import WinnowingMatcher
        block = "THE MOVED BLOCK OF CONTENT 12345"
        p = block + " trailing stuff here"
        q = "leading stuff here " + block
        got = WinnowingMatcher(k=8, window=4).match(p, whole(p),
                                                    q, whole(q))
        assert any(block in p[s.p_start:s.p_start + s.length]
                   for s in got)
        for seg in got:
            assert seg.verify(p, q)

    def test_respects_regions(self):
        from repro.matchers import WinnowingMatcher
        p = "xxxx SHARED CONTENT HERE yyyy"
        q = "aaaa SHARED CONTENT HERE bbbb"
        region_p = Interval(4, 25)
        region_q = Interval(4, 25)
        for seg in WinnowingMatcher(k=8, window=4).match(p, region_p,
                                                         q, region_q):
            assert region_p.contains(seg.p_interval)
            assert region_q.contains(seg.q_interval)
            assert seg.verify(p, q)

    def test_rejects_bad_params(self):
        from repro.matchers import WinnowingMatcher
        with pytest.raises(ValueError):
            WinnowingMatcher(k=1)

    def test_factory_knows_ws(self):
        assert make_matcher("WS", MatchCache()).name == "WS"

    @given(st.text(alphabet="abc \n", min_size=0, max_size=150),
           st.text(alphabet="abc \n", min_size=0, max_size=150))
    @settings(max_examples=50, deadline=None)
    def test_all_segments_verify(self, p, q):
        from repro.matchers import WinnowingMatcher
        got = WinnowingMatcher(k=6, window=4).match(p, whole(p),
                                                    q, whole(q))
        for seg in got:
            assert seg.verify(p, q)

    def test_engine_accepts_ws_assignment(self, tmp_path):
        import os

        from repro.core.noreuse import NoReuseSystem
        from repro.core.runner import canonical_results
        from repro.corpus.snapshot import snapshot_from_texts
        from repro.extractors import make_task
        from repro.plan import compile_program, find_units
        from repro.reuse.engine import PlanAssignment, ReuseEngine

        task = make_task("play", work_scale=0)
        plan = compile_program(task.program, task.registry)
        units = find_units(plan)
        assignment = PlanAssignment(
            {units[0].uid: "WS", **{u.uid: "RU" for u in units[1:]}})
        text = ("== Filmography ==\n"
                "Nina Weber starred as Dr. Malone in Crimson Harbor "
                "(1999).\n")
        s0 = snapshot_from_texts(0, {"u": text})
        s1 = snapshot_from_texts(1, {"u": "new intro\n" + text})
        engine = ReuseEngine(plan, units, assignment)
        engine.run_snapshot(s0, None, None, str(tmp_path / "0"))
        r1 = engine.run_snapshot(s1, s0, str(tmp_path / "0"),
                                 str(tmp_path / "1"))
        expected = NoReuseSystem(plan).process(s1)
        assert canonical_results(r1) == canonical_results(expected)
        copied = sum(s.copied_tuples for s in r1.unit_stats.values())
        assert copied > 0
