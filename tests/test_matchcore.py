"""Raw-speed matcher core: config keys, the cross-snapshot match
cache, and kernel/fallback parity.

Three contracts from the content-keyed caching design:

* **Config keys** — every matcher attribute is classified as either
  result-relevant (``CONFIG_ATTRS``, part of :meth:`Matcher.config_key`)
  or execution-only (``STATE_ATTRS``); an unclassified attribute fails
  the sweep here, because it could silently let differently-configured
  matchers share cached results.

* **Cross-snapshot cache** — :class:`CrossSnapshotMatchCache` is a
  plain bounded LRU: recency order, entry and byte caps, lifetime
  counters, and safety under concurrent use.

* **Kernel parity** — every vectorized kernel (ST k-gram, UD interned
  Myers band sweep, WS winnowing, and their shared helpers) is pinned
  byte-identical to its pure-Python fallback, including the rare hash
  collision repair path and the numpy-disabled whole-system run.
"""

from __future__ import annotations

import random
import threading

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import dblife_corpus
from repro.core.runner import canonical_results, make_system
from repro.extractors import make_task
from repro.fastpath.matchcache import CrossSnapshotMatchCache
from repro.fastpath.memo import MatchMemo
from repro.matchers import base as base_mod
from repro.matchers import ud as ud_mod
from repro.matchers.base import MatchCache, ST_NAME
from repro.matchers.dn import DNMatcher
from repro.matchers.ru import RUMatcher
from repro.matchers.st import STMatcher, st_kernel
from repro.matchers.ud import (
    UDMatcher,
    _myers_core,
    _myers_core_np,
    _pair_runs,
    _pair_runs_np,
)
from repro.matchers.ws import WinnowingMatcher, winnow_fingerprints, \
    winnow_fingerprints_np
from repro.plan import compile_program, find_units
from repro.reuse.engine import PlanAssignment
from repro.text import tokens as _tokens
from repro.text.span import Interval

np = _tokens.get_numpy()
needs_numpy = pytest.mark.skipif(np is None, reason="numpy not installed")


def _all_matchers():
    return [
        DNMatcher(),
        UDMatcher(max_d=3, kernel="force"),
        STMatcher(min_length=9, automatons=object(),
                  tokens=_tokens.TokenCache(), kernel="off"),
        RUMatcher(MatchCache()),
        WinnowingMatcher(k=6, window=4, kernel="auto"),
    ]


class TestConfigKeys:
    def test_every_attribute_is_classified(self):
        """No matcher instance may grow an attribute that is neither
        config (keyed) nor state (excluded by design)."""
        for matcher in _all_matchers():
            declared = set(matcher.CONFIG_ATTRS) | set(matcher.STATE_ATTRS)
            undeclared = set(vars(matcher)) - declared
            assert not undeclared, \
                f"{type(matcher).__name__}: unclassified {undeclared}"

    def test_config_attrs_all_exist(self):
        for matcher in _all_matchers():
            for attr in matcher.CONFIG_ATTRS + matcher.STATE_ATTRS:
                assert hasattr(matcher, attr)

    def test_distinct_configs_distinct_keys(self):
        assert (STMatcher(min_length=8).config_key()
                != STMatcher(min_length=12).config_key())
        assert (UDMatcher(max_d=0).config_key()
                != UDMatcher(max_d=5).config_key())
        base = WinnowingMatcher(k=12, window=8).config_key()
        assert WinnowingMatcher(k=10, window=8).config_key() != base
        assert WinnowingMatcher(k=12, window=6).config_key() != base
        assert WinnowingMatcher(
            k=12, window=8, max_anchors_per_hash=9).config_key() != base

    def test_keys_distinct_across_matchers(self):
        keys = [m.config_key() for m in _all_matchers()]
        assert len(set(keys)) == len(keys)

    def test_state_does_not_change_key(self):
        """Caches and kernel toggles are parity-pinned — two instances
        differing only in them MUST share cached results."""
        plain = STMatcher(min_length=12, kernel="off")
        loaded = STMatcher(min_length=12, automatons=object(),
                           tokens=_tokens.TokenCache(), kernel="force")
        assert plain.config_key() == loaded.config_key()
        assert (UDMatcher(kernel="off").config_key()
                == UDMatcher(kernel="force").config_key())


class TestCrossSnapshotMatchCache:
    KEY_A = (("ST", 12), b"pa", b"qa")
    KEY_B = (("ST", 12), b"pb", b"qb")
    KEY_C = (("ST", 12), b"pc", b"qc")

    def test_roundtrip_and_counters(self):
        cache = CrossSnapshotMatchCache()
        assert cache.get(self.KEY_A) is None
        cache.put(self.KEY_A, ((0, 0, 5),), 0.25)
        assert cache.get(self.KEY_A) == (((0, 0, 5),), 0.25)
        c = cache.counters()
        assert (c["hits"], c["misses"], c["inserts"]) == (1, 1, 1)
        assert c["entries"] == len(cache) == 1
        assert "hits=1" in cache.describe()

    def test_lru_refresh_on_get(self):
        cache = CrossSnapshotMatchCache(max_entries=2)
        cache.put(self.KEY_A, (), 0.0)
        cache.put(self.KEY_B, (), 0.0)
        cache.get(self.KEY_A)  # A is now most recent
        evicted = cache.put(self.KEY_C, (), 0.0)
        assert evicted == 1
        assert cache.get(self.KEY_B) is None  # B was the LRU entry
        assert cache.get(self.KEY_A) is not None
        assert cache.evictions == 1

    def test_byte_bound_evicts(self):
        from repro.fastpath.matchcache import _entry_bytes
        one_entry = _entry_bytes(((0, 0, 1),))
        cache = CrossSnapshotMatchCache(max_entries=100,
                                        max_bytes=2 * one_entry)
        cache.put(self.KEY_A, ((0, 0, 1),), 0.0)
        cache.put(self.KEY_B, ((0, 0, 1),), 0.0)
        assert len(cache) == 2 and cache.bytes == 2 * one_entry
        cache.put(self.KEY_C, ((0, 0, 1),), 0.0)
        assert len(cache) == 2 and cache.bytes == 2 * one_entry
        assert cache.get(self.KEY_A) is None

    def test_refresh_same_key_does_not_double_count_bytes(self):
        cache = CrossSnapshotMatchCache()
        cache.put(self.KEY_A, ((0, 0, 1), (2, 2, 3)), 0.0)
        before = cache.bytes
        cache.put(self.KEY_A, ((0, 0, 1), (2, 2, 3)), 0.0)
        assert cache.bytes == before
        assert len(cache) == 1

    def test_clear(self):
        cache = CrossSnapshotMatchCache()
        cache.put(self.KEY_A, ((0, 0, 5),), 0.1)
        cache.clear()
        assert len(cache) == 0 and cache.bytes == 0
        assert cache.get(self.KEY_A) is None

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            CrossSnapshotMatchCache(max_entries=0)
        with pytest.raises(ValueError):
            CrossSnapshotMatchCache(max_bytes=0)

    def test_thread_safety_under_contention(self):
        cache = CrossSnapshotMatchCache(max_entries=16)
        errors = []

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            try:
                for i in range(400):
                    key = (("ST", 12), b"p%d" % rng.randrange(32), b"q")
                    if rng.random() < 0.5:
                        cache.put(key, ((0, 0, i),), 0.0)
                    else:
                        cache.get(key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 16
        c = cache.counters()
        # every retained value is a single-segment entry, so the byte
        # ledger must agree exactly with the occupancy
        from repro.fastpath.matchcache import _entry_bytes
        assert c["bytes"] == c["entries"] * _entry_bytes(((0, 0, 1),))


# -- memo + shared cache: byte-identity under replay -----------------------


def _direct_match_many(matcher, p_text, p_region, q_text, candidates):
    return matcher.match_many(p_text, p_region, q_text, candidates)


@st.composite
def _evolved_pair(draw):
    """A q text and a p text sharing movable chunks, plus regions."""
    alphabet = "ab \n"
    chunks = draw(st.lists(st.text(alphabet, min_size=1, max_size=24),
                           min_size=1, max_size=6))
    q_text = "#".join(chunks)
    order = draw(st.permutations(range(len(chunks))))
    edits = [draw(st.text(alphabet, max_size=6)) for _ in chunks]
    p_text = "#".join(chunks[i] + edits[i] for i in order)
    return q_text, p_text


@settings(max_examples=60, deadline=None)
@given(pair=_evolved_pair(),
       matcher_kind=st.sampled_from(["ST", "UD"]),
       max_entries=st.sampled_from([1, 2, 64]),
       shift=st.integers(min_value=0, max_value=7))
def test_memo_and_cache_replay_byte_identical(pair, matcher_kind,
                                              max_entries, shift):
    """Routing match_many through the memo + a (possibly tiny, i.e.
    constantly evicting) shared cache returns exactly the segments the
    bare matcher returns — including when the same content replays at
    shifted offsets, where rebasing must retag positions and itids."""
    q_text, p_text = pair
    matcher = (STMatcher(min_length=4) if matcher_kind == "ST"
               else UDMatcher())
    shared = CrossSnapshotMatchCache(max_entries=max_entries)
    memo = MatchMemo(shared=shared)
    p_region = Interval(0, len(p_text))
    candidates = {7: Interval(0, len(q_text))}
    expect = _direct_match_many(matcher, p_text, p_region, q_text,
                                candidates)
    got = memo.match_many(matcher, p_text, p_region, q_text, candidates)
    assert got == expect
    # Same content at shifted offsets, replayed through a *fresh* memo
    # over the same shared cache (the cross-snapshot path), different
    # itid: results must equal a bare matcher run on the shifted texts.
    pad = "\t" * shift
    p2, q2 = pad + p_text, pad + q_text
    p2_region = Interval(shift, len(p2))
    candidates2 = {13: Interval(shift, len(q2))}
    expect2 = _direct_match_many(matcher, p2, p2_region, q2, candidates2)
    memo2 = MatchMemo(shared=shared)
    got2 = memo2.match_many(matcher, p2, p2_region, q2, candidates2)
    assert got2 == expect2


# -- kernel / fallback parity ----------------------------------------------


@needs_numpy
class TestKgramHashes:
    def _reference(self, values, k):
        """Linear rolling recurrence the O(log k) doubling must match."""
        base = _tokens.ST_HASH_BASE
        mod = 1 << 64
        out = []
        for i in range(len(values) - k + 1):
            h = 0
            for v in values[i:i + k]:
                h = (h * base + v) % mod
            out.append(h)
        return out

    @pytest.mark.parametrize("k", [1, 2, 3, 7, 8, 13, 32])
    def test_matches_linear_reference(self, k):
        rng = random.Random(k)
        values = [rng.randrange(1 << 20) for _ in range(50)]
        arr = np.asarray(values, dtype=np.uint64)
        got = _tokens.kgram_hashes(arr, k, np).tolist()
        assert got == self._reference(values, k)

    def test_short_input(self):
        arr = np.asarray([1, 2], dtype=np.uint64)
        assert _tokens.kgram_hashes(arr, 5, np).shape[0] == 0


def _texts_with_overlaps(rng, n_chunks=8, vocab=("alpha", "beta", "gamma",
                                                 "delta x", "epsilon yz")):
    chunks = [" ".join(rng.choices(vocab, k=rng.randrange(1, 6)))
              for _ in range(n_chunks)]
    q = "\n".join(chunks)
    order = list(range(n_chunks))
    rng.shuffle(order)
    p = "\n".join(chunks[i] + ("!" if rng.random() < 0.4 else "")
                  for i in order)
    return p, q


@needs_numpy
class TestSTKernelParity:
    def _assert_parity(self, p, q, min_length):
        slow = STMatcher(min_length=min_length, kernel="off")
        fast = STMatcher(min_length=min_length,
                         tokens=_tokens.TokenCache(), kernel="force")
        pr, qr = Interval(0, len(p)), Interval(0, len(q))
        assert fast.match(p, pr, q, qr) == slow.match(p, pr, q, qr)

    def test_randomized(self):
        rng = random.Random(11)
        for _ in range(40):
            p, q = _texts_with_overlaps(rng)
            self._assert_parity(p, q, rng.choice([4, 8, 12]))

    def test_collision_repair_path(self, monkeypatch):
        """With the k-gram hash degraded to 7 buckets, anchors are
        overwhelmingly spurious — the run-length verification repair
        must still leave byte-identical output."""
        real = _tokens.kgram_hashes
        monkeypatch.setattr(
            _tokens, "kgram_hashes",
            lambda arr, k, np_mod: real(arr, k, np_mod) % np_mod.uint64(7))
        rng = random.Random(23)
        for _ in range(20):
            p, q = _texts_with_overlaps(rng, n_chunks=5)
            self._assert_parity(p, q, 5)

    def test_kernel_subregions(self):
        text = "the quick brown fox jumps over the lazy dog" * 3
        p = text + " tail"
        self._assert_parity(p, text, 8)
        slow = STMatcher(min_length=8, kernel="off")
        fast = STMatcher(min_length=8, tokens=_tokens.TokenCache(),
                         kernel="force")
        pr, qr = Interval(5, len(p) - 7), Interval(3, len(text) - 2)
        assert (fast.match(p, pr, text, qr)
                == slow.match(p, pr, text, qr))


@needs_numpy
class TestUDKernelParity:
    def test_myers_core_np_matches_serial(self):
        rng = random.Random(5)
        for trial in range(120):
            n, m = rng.randrange(0, 40), rng.randrange(0, 40)
            sigma = rng.choice([2, 4, 9])
            a = [rng.randrange(sigma) for _ in range(n)]
            b = [rng.randrange(sigma) for _ in range(m)]
            # the cores assume no common prefix/suffix
            if a and b and a[0] == b[0]:
                b[0] = sigma
            if a and b and a[-1] == b[-1]:
                b[-1] = sigma + 1
            max_d = rng.choice([0, 0, 4, 11])
            assert (_myers_core_np(a, b, max_d, np)
                    == _myers_core(a, b, max_d)), (a, b, max_d)

    def test_myers_vector_phase_exercised(self, monkeypatch):
        """Force the serial->vector switch down so the array sweep
        (not just the serial prefix) is what's being verified."""
        monkeypatch.setattr(ud_mod, "_MYERS_SWITCH_D", 1)
        rng = random.Random(6)
        for trial in range(60):
            a = [rng.randrange(3) for _ in range(rng.randrange(0, 30))]
            b = [rng.randrange(3) for _ in range(rng.randrange(0, 30))]
            if a and b and a[0] == b[0]:
                b[0] = 3
            if a and b and a[-1] == b[-1]:
                b[-1] = 4
            assert _myers_core_np(a, b, 0, np) == _myers_core(a, b, 0)

    def test_pair_runs_np(self):
        rng = random.Random(9)
        for _ in range(30):
            pairs = []
            x = y = 0
            while len(pairs) < rng.randrange(1, 400):
                x += rng.randrange(1, 3)
                y += rng.randrange(1, 3)
                run = rng.randrange(1, 5)
                for _ in range(run):
                    pairs.append((x, y))
                    x += 1
                    y += 1
            assert _pair_runs_np(pairs, np) == _pair_runs(pairs)

    def test_matcher_parity_large_region(self):
        rng = random.Random(31)
        lines_q = [f"line {rng.randrange(40)} body" for _ in range(300)]
        lines_p = list(lines_q)
        for _ in range(30):  # edits
            lines_p[rng.randrange(len(lines_p))] = "edited"
        rng.shuffle(lines_p[:150])  # move blocks around
        p, q = "\n".join(lines_p), "\n".join(lines_q)
        pr, qr = Interval(0, len(p)), Interval(0, len(q))
        assert (UDMatcher(kernel="force").match(p, pr, q, qr)
                == UDMatcher(kernel="off").match(p, pr, q, qr))


@needs_numpy
class TestWSKernelParity:
    @pytest.mark.parametrize("k,window", [(4, 3), (12, 8), (6, 1)])
    def test_winnow_parity(self, k, window):
        rng = random.Random(k * 100 + window)
        for _ in range(25):
            text, _ = _texts_with_overlaps(rng, n_chunks=4)
            assert (winnow_fingerprints_np(text, k, window, np)
                    == winnow_fingerprints(text, k, window))

    def test_matcher_parity(self):
        rng = random.Random(41)
        for _ in range(20):
            p, q = _texts_with_overlaps(rng)
            pr, qr = Interval(0, len(p)), Interval(0, len(q))
            assert (WinnowingMatcher(kernel="force").match(p, pr, q, qr)
                    == WinnowingMatcher(kernel="off").match(p, pr, q, qr))


# -- whole-system byte-identity with numpy masked off ----------------------


@needs_numpy
@pytest.mark.parametrize("matcher", [ST_NAME, "UD"])
def test_system_results_identical_without_numpy(tmp_path, matcher):
    """A fast-paths-on Delex series must produce identical extraction
    results whether the vectorized kernels run or the pure fallbacks
    do (the no-numpy deployment axis)."""
    task = make_task("chair", work_scale=0.2)
    snapshots = list(dblife_corpus(n_pages=10, seed=55,
                                   p_unchanged=0.6).snapshots(3))
    plan = compile_program(task.program, task.registry)
    assignment = PlanAssignment.uniform(find_units(plan), matcher)
    series = {}
    try:
        for flag, enabled in (("np", True), ("pure", False)):
            _tokens.set_numpy_enabled(enabled)
            system = make_system("delex", task,
                                 str(tmp_path / f"{matcher}_{flag}"),
                                 fastpath="on",
                                 fixed_assignment=assignment)
            prev = None
            outs = []
            for snap in snapshots:
                outs.append(canonical_results(system.process(snap, prev)))
                prev = snap
            series[flag] = outs
    finally:
        _tokens.set_numpy_enabled(None)
    assert series["np"] == series["pure"]
