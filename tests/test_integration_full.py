"""Full-breadth integration tests: every task, every system, plus
property tests for cross-URL reuse and the reuse-file layer."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.noreuse import NoReuseSystem
from repro.core.runner import canonical_results, run_series, verify_agreement
from repro.corpus import ChangeModel, EvolvingCorpus, dblife_corpus, wikipedia_corpus
from repro.corpus.generators import DBLifeGenerator, WikipediaGenerator
from repro.corpus.snapshot import Snapshot
from repro.extractors import ALL_TASKS, make_task
from repro.plan import compile_program, find_units
from repro.reuse import FingerprintScope, PlanAssignment, ReuseEngine
from repro.reuse.files import ReuseFileReader, ReuseFileWriter, encode_fields
from repro.text.document import Page
from repro.text.span import Span


@pytest.mark.parametrize("task_name", ALL_TASKS)
def test_all_tasks_all_systems_agree(task_name, tmp_path):
    """Theorem 1 across the full task library and all four systems,
    over four snapshots with meaningful churn."""
    task = make_task(task_name, work_scale=0)
    if task.corpus == "dblife":
        corpus = dblife_corpus(n_pages=12, seed=31, p_unchanged=0.5)
    else:
        corpus = wikipedia_corpus(n_pages=12, seed=31)
    snaps = list(corpus.snapshots(4))
    reports = run_series(task, snaps, workdir=str(tmp_path))
    assert verify_agreement(reports) == [], task_name


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000), rename_rate=st.floats(0.0, 0.8))
def test_fingerprint_scope_correct_under_random_renames(
        tmp_path_factory, seed, rename_rate):
    """Random churn including URL renames: the fingerprint scope must
    stay exactly correct while recycling whatever it can."""
    model = ChangeModel(p_unchanged=0.4, p_removed=0.05, p_added=0.05,
                        p_renamed=rename_rate, mean_edits=2.0)
    corpus = EvolvingCorpus(WikipediaGenerator(), 8, model, seed=seed)
    snaps = list(corpus.snapshots(3))
    task = make_task("play", work_scale=0)
    plan = compile_program(task.program, task.registry)
    units = find_units(plan)
    assignment = PlanAssignment({
        units[0].uid: "UD", **{u.uid: "RU" for u in units[1:]}})
    engine = ReuseEngine(plan, units, assignment,
                         scope=FingerprintScope())
    base = str(tmp_path_factory.mktemp("fp"))
    prev = prev_dir = None
    plain = NoReuseSystem(plan)
    for i, snap in enumerate(snaps):
        out = f"{base}/{i}"
        result = engine.run_snapshot(snap, prev, prev_dir, out)
        assert canonical_results(result) == \
            canonical_results(plain.process(snap))
        prev, prev_dir = snap, out


record_values = st.one_of(st.integers(-10**6, 10**6),
                          st.text(max_size=20), st.booleans(),
                          st.none())


@settings(max_examples=40, deadline=None)
@given(pages=st.lists(
    st.tuples(
        st.lists(st.tuples(st.integers(0, 500), st.integers(0, 500)),
                 max_size=5),
        st.lists(st.dictionaries(
            st.sampled_from(["v", "w", "n"]), record_values,
            min_size=1, max_size=3), max_size=5),
    ), min_size=1, max_size=6))
def test_reuse_file_roundtrip_property(tmp_path_factory, pages):
    """Arbitrary page groups of inputs/outputs survive the write/read
    cycle byte-exactly and in order."""
    base = tmp_path_factory.mktemp("rf")
    i_path = str(base / "u.I.reuse")
    o_path = str(base / "u.O.reuse")
    wi, wo = ReuseFileWriter(i_path), ReuseFileWriter(o_path)
    expected = []
    for idx, (regions, outs) in enumerate(pages):
        did = f"page{idx}"
        wi.begin_page(did)
        wo.begin_page(did)
        tids = []
        for s, e in regions:
            lo, hi = min(s, e), max(s, e)
            tids.append(wi.append_input(did, lo, hi))
        for fields in outs:
            wo.append_output(did, tids[0] if tids else 0,
                             encode_fields(fields))
        expected.append((did, regions, outs))
    wi.close()
    wo.close()

    ri, ro = ReuseFileReader(i_path), ReuseFileReader(o_path)
    for did, regions, outs in expected:
        got_inputs = ri.read_page_inputs(did)
        assert len(got_inputs) == len(regions)
        for (s, e), tup in zip(regions, got_inputs):
            assert (tup.s, tup.e) == (min(s, e), max(s, e))
        got_outputs = ro.read_page_outputs(did)
        assert len(got_outputs) == len(outs)
        for fields, out in zip(outs, got_outputs):
            decoded = {name: a for name, kind, a, b in out.fields}
            assert decoded == fields
    ri.close()
    ro.close()


def test_three_way_scope_composition(tmp_path):
    """Rename + edit + removal + addition in one transition, engine
    with fingerprint scope against from-scratch."""
    body = ("== Filmography ==\n"
            "Nina Weber starred as Dr. Malone in Crimson Harbor (1999).\n"
            "Ivan Rossi starred as Agent Carter in Paper Kingdom (2001).\n")
    other = ("== Filmography ==\n"
             "Karen Xu starred as Judge Whitfield in Velvet Empire "
             "(1988).\n")
    s0 = Snapshot(0, [Page.from_url("a", body),
                      Page.from_url("b", other),
                      Page.from_url("gone", body.replace("Nina", "Lena"))])
    s1 = Snapshot(1, [
        Page.from_url("a", body.replace("(1999)", "(1998)")),  # edited
        Page.from_url("b-moved", other),                       # renamed
        Page.from_url("new", body.replace("Nina Weber",
                                          "Paula Foster")),    # added
    ])
    task = make_task("play", work_scale=0)
    plan = compile_program(task.program, task.registry)
    units = find_units(plan)
    engine = ReuseEngine(
        plan, units,
        PlanAssignment({units[0].uid: "ST",
                        **{u.uid: "RU" for u in units[1:]}}),
        scope=FingerprintScope())
    d0, d1 = str(tmp_path / "0"), str(tmp_path / "1")
    engine.run_snapshot(s0, None, None, d0)
    result = engine.run_snapshot(s1, s0, d0, d1)
    expected = NoReuseSystem(plan).process(s1)
    assert canonical_results(result) == canonical_results(expected)
    copied = sum(s.copied_tuples for s in result.unit_stats.values())
    assert copied > 0  # both the edited and the renamed page recycle
