"""Cost model, statistics collection, Algorithm 1, enumeration."""

import pytest

from repro.corpus import wikipedia_corpus
from repro.extractors import make_task
from repro.matchers.base import DN_NAME, RU_NAME, ST_NAME, UD_NAME
from repro.optimizer.cost import (
    from_scratch_cost,
    plan_cost,
    rank_plans,
    resolve_ru_donor,
    unit_cost,
)
from repro.optimizer.enumerate import (
    canonical_plans,
    count_assignments,
    enumerate_assignments,
)
from repro.optimizer.params import CostWeights, Statistics, UnitEstimates
from repro.optimizer.search import search_plan
from repro.optimizer.stats import collect_statistics
from repro.plan import compile_program, find_units, partition_chains
from repro.reuse.engine import PlanAssignment, ReuseEngine


def synthetic_stats(units, extract_rate=1e-5, g_st=0.1, g_ud=0.3,
                    st_rate=2e-6, ud_rate=5e-7, f=0.9, m=100):
    """Hand-built statistics with controllable trade-offs."""
    estimates = {}
    for u in units:
        est = UnitEstimates(a=2.0, a_prev=2.0, l=300.0,
                            extract_rate=extract_rate,
                            b_blocks=2.0, c_blocks=2.0)
        est.s = {ST_NAME: 2.0, UD_NAME: 2.0, RU_NAME: 2.0}
        est.g = {ST_NAME: g_st, UD_NAME: g_ud}
        est.h = {ST_NAME: 2.0, UD_NAME: 1.0}
        est.g_ru = {ST_NAME: g_st * 1.1, UD_NAME: g_ud * 1.1}
        est.h_ru = {ST_NAME: 2.0, UD_NAME: 1.0}
        estimates[u.uid] = est
    weights = CostWeights(match_rate={ST_NAME: st_rate, UD_NAME: ud_rate,
                                      RU_NAME: 1e-9})
    return Statistics(f=f, m=m, d_blocks=50.0, units=estimates,
                      weights=weights)


@pytest.fixture(scope="module")
def play_setup():
    task = make_task("play", work_scale=0)
    plan = compile_program(task.program, task.registry)
    units = find_units(plan)
    chains = partition_chains(units)
    return plan, units, chains


class TestUnitCost:
    def test_dn_cost_is_pure_extraction_plus_io(self, play_setup):
        _, units, _ = play_setup
        stats = synthetic_stats(units)
        unit = units[0]
        cost = unit_cost(unit, DN_NAME, stats, None)
        est = stats.units[unit.uid]
        expected_extract = (est.extract_rate * est.a * stats.m * est.l)
        assert cost == pytest.approx(
            expected_extract + stats.weights.io_per_block * est.b_blocks,
            rel=0.01)

    def test_matching_reduces_extraction_term(self, play_setup):
        _, units, _ = play_setup
        stats = synthetic_stats(units, extract_rate=1e-3)
        unit = units[0]
        assert unit_cost(unit, ST_NAME, stats, None) < \
            unit_cost(unit, DN_NAME, stats, None)

    def test_expensive_matcher_can_lose(self, play_setup):
        _, units, _ = play_setup
        # Extraction is nearly free; matching is expensive.
        stats = synthetic_stats(units, extract_rate=1e-9, st_rate=1e-3)
        unit = units[0]
        assert unit_cost(unit, DN_NAME, stats, None) < \
            unit_cost(unit, ST_NAME, stats, None)

    def test_ru_without_donor_prices_like_dn_extraction(self, play_setup):
        _, units, _ = play_setup
        stats = synthetic_stats(units)
        unit = units[0]
        ru = unit_cost(unit, RU_NAME, stats, None)
        dn = unit_cost(unit, DN_NAME, stats, None)
        assert ru >= dn * 0.99  # same extraction term, plus O-file read

    def test_f_zero_means_full_extraction(self, play_setup):
        _, units, _ = play_setup
        stats = synthetic_stats(units, f=0.0)
        unit = units[0]
        assert unit_cost(unit, ST_NAME, stats, None) >= \
            stats.units[unit.uid].extract_rate * 2.0 * stats.m * 300.0


class TestDonorResolution:
    def test_nearest_earlier_st_unit(self, play_setup):
        _, units, _ = play_setup
        assignment = PlanAssignment({
            units[0].uid: ST_NAME, units[1].uid: RU_NAME,
            units[2].uid: UD_NAME, units[3].uid: RU_NAME})
        donor = resolve_ru_donor(units[3], units, assignment)
        assert donor is units[2]

    def test_no_earlier_donor(self, play_setup):
        _, units, _ = play_setup
        assignment = PlanAssignment({u.uid: RU_NAME for u in units})
        assert resolve_ru_donor(units[0], units, assignment) is None


class TestPlanCost:
    def test_sums_units(self, play_setup):
        _, units, _ = play_setup
        stats = synthetic_stats(units)
        assignment = PlanAssignment.all_dn(units)
        total = plan_cost(units, assignment, stats)
        parts = sum(unit_cost(u, DN_NAME, stats, None) for u in units)
        assert total == pytest.approx(parts)

    def test_from_scratch_equals_all_dn(self, play_setup):
        _, units, _ = play_setup
        stats = synthetic_stats(units)
        assert from_scratch_cost(units, stats) == pytest.approx(
            plan_cost(units, PlanAssignment.all_dn(units), stats))

    def test_rank_plans_sorted(self, play_setup):
        _, units, _ = play_setup
        stats = synthetic_stats(units)
        plans = [PlanAssignment.all_dn(units),
                 PlanAssignment.uniform(units, ST_NAME)]
        ranked = rank_plans(units, plans, stats)
        assert ranked[0].cost <= ranked[1].cost


class TestSearch:
    def test_expensive_extraction_prefers_matching(self, play_setup):
        _, units, chains = play_setup
        stats = synthetic_stats(units, extract_rate=1e-3)
        result = search_plan(units, stats, chains)
        used = set(result.assignment.matchers.values())
        assert used & {ST_NAME, UD_NAME}, "should pick a real matcher"

    def test_cheap_extraction_prefers_dn(self, play_setup):
        _, units, chains = play_setup
        stats = synthetic_stats(units, extract_rate=1e-9,
                                st_rate=1e-3, ud_rate=1e-3)
        result = search_plan(units, stats, chains)
        assert set(result.assignment.matchers.values()) == {DN_NAME}

    def test_at_most_one_expensive_matcher_per_chain(self, play_setup):
        _, units, chains = play_setup
        stats = synthetic_stats(units, extract_rate=1e-3)
        result = search_plan(units, stats, chains)
        for chain in chains:
            expensive = [u for u in chain.units
                         if result.assignment.matchers[u.uid]
                         in (ST_NAME, UD_NAME)]
            assert len(expensive) <= 1

    def test_cross_chain_ru_considered(self, play_setup):
        _, units, chains = play_setup
        # Make matching very expensive but extraction dominate: the
        # second chain should recycle the first chain's matcher via RU.
        stats = synthetic_stats(units, extract_rate=5e-4, st_rate=5e-5,
                                ud_rate=5e-5)
        result = search_plan(units, stats, chains)
        matchers = result.assignment.matchers
        expensive_total = [uid for uid, m in matchers.items()
                           if m in (ST_NAME, UD_NAME)]
        assert len(expensive_total) <= 2
        assert result.estimated_cost > 0

    def test_assignment_covers_all_units(self, play_setup):
        _, units, chains = play_setup
        stats = synthetic_stats(units)
        result = search_plan(units, stats, chains)
        assert set(result.assignment.matchers) == {u.uid for u in units}


class TestEnumeration:
    def test_play_has_256_plans(self, play_setup):
        _, units, _ = play_setup
        assert count_assignments(units) == 256
        assert len(canonical_plans(units)) == 256

    def test_enumeration_unique(self, play_setup):
        _, units, _ = play_setup
        seen = {tuple(sorted(a.matchers.items()))
                for a in enumerate_assignments(units)}
        assert len(seen) == 256

    def test_too_large_space_rejected(self, play_setup):
        _, units, _ = play_setup
        with pytest.raises(ValueError):
            canonical_plans(units * 3)


class TestStatisticsCollection:
    def test_collects_sane_estimates(self, tmp_path):
        task = make_task("play", work_scale=0)
        plan = compile_program(task.program, task.registry)
        units = find_units(plan)
        snaps = list(wikipedia_corpus(n_pages=10, seed=3).snapshots(3))
        # Capture snapshot 1 so recorded regions exist.
        engine = ReuseEngine(plan, units, PlanAssignment.all_dn(units))
        cap0 = str(tmp_path / "0")
        engine.run_snapshot(snaps[1], None, None, cap0)
        stats = collect_statistics(plan, units, snaps[2], snaps[:2],
                                   sample_size=5, k_snapshots=2,
                                   prev_capture_dir=cap0)
        assert 0.5 <= stats.f <= 1.0
        assert stats.m == len(snaps[2])
        for u in units:
            est = stats.units[u.uid]
            assert est.a > 0
            assert est.l > 0
            assert 0.0 <= est.g.get("ST", 1.0) <= 1.0
            assert 0.0 <= est.g_ru.get("ST", 1.0) <= 1.0

    def test_requires_history(self):
        task = make_task("play", work_scale=0)
        plan = compile_program(task.program, task.registry)
        units = find_units(plan)
        snaps = list(wikipedia_corpus(n_pages=4, seed=3).snapshots(1))
        with pytest.raises(ValueError):
            collect_statistics(plan, units, snaps[0], [])

    def test_no_shared_pages_degrades_gracefully(self):
        from repro.corpus.snapshot import snapshot_from_texts
        task = make_task("play", work_scale=0)
        plan = compile_program(task.program, task.registry)
        units = find_units(plan)
        s0 = snapshot_from_texts(0, {"a": "x"})
        s1 = snapshot_from_texts(1, {"b": "y"})
        stats = collect_statistics(plan, units, s1, [s0], sample_size=5)
        assert stats.f == 0.0
        assert stats.sample_pages == 0
