"""Snapshot-delta fast paths: units, counters, and on/off parity.

The headline property is behaviour preservation: with the fast paths
on, every system produces byte-identical reuse files and identical
extraction results to the fast paths off. The tests here check the
individual mechanisms (fingerprints, match memo, automaton cache,
indexed reader) and then the end-to-end parity over evolved
multi-snapshot series for all four systems.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import dblife_corpus
from repro.corpus.snapshot import read_snapshot, write_snapshot
from repro.core.runner import (
    SYSTEM_NAMES,
    canonical_results,
    make_system,
    run_series,
    verify_fastpath,
)
from repro.extractors import make_task
from repro.fastpath import (
    AutomatonCache,
    FastPathConfig,
    FastPathStats,
    IndexedReuseFileReader,
    MatchMemo,
    content_fingerprint,
    pages_identical,
)
from repro.matchers import STMatcher, UDMatcher, WinnowingMatcher
from repro.matchers.base import RU_NAME, ST_NAME, UD_NAME
from repro.matchers.ud import myers_lcs_pairs
from repro.matchers.ws import WS_NAME
from repro.plan import compile_program, find_units
from repro.reuse.engine import PlanAssignment
from repro.reuse.files import ReuseFileReader, ReuseFileWriter
from repro.text.document import Page
from repro.text.span import Interval


# -- configuration ---------------------------------------------------------


class TestFastPathConfig:
    def test_default_is_on(self):
        cfg = FastPathConfig.from_flag(None)
        assert cfg.enabled
        for feature in ("unchanged_page", "match_memo",
                        "automaton_cache", "reader_index"):
            assert cfg.want(feature)

    @pytest.mark.parametrize("flag", ["off", "false", "0", "no", False])
    def test_off_flags(self, flag):
        cfg = FastPathConfig.from_flag(flag)
        assert not cfg.enabled
        assert not cfg.want("unchanged_page")

    @pytest.mark.parametrize("flag", ["on", "true", "1", "yes", True])
    def test_on_flags(self, flag):
        assert FastPathConfig.from_flag(flag).enabled

    def test_passthrough_and_invalid(self):
        cfg = FastPathConfig.on()
        assert FastPathConfig.from_flag(cfg) is cfg
        with pytest.raises(ValueError):
            FastPathConfig.from_flag("sometimes")

    def test_without_disables_one_feature(self):
        cfg = FastPathConfig.on().without("match_memo")
        assert cfg.enabled and not cfg.want("match_memo")
        assert cfg.want("unchanged_page")

    def test_master_switch_beats_features(self):
        cfg = FastPathConfig(enabled=False)
        assert not cfg.want("match_memo")


# -- fingerprints ----------------------------------------------------------


class TestFingerprint:
    def test_stable_and_distinct(self):
        assert content_fingerprint("abc") == content_fingerprint("abc")
        assert content_fingerprint("abc") != content_fingerprint("abd")

    def test_page_fingerprint_lazy_and_cached(self):
        page = Page(did="d1", url="u", text="hello world")
        assert page.fp == ""
        fp = page.fingerprint
        assert fp == content_fingerprint("hello world")
        assert page.fp == fp  # cached into the instance

    def test_pages_identical_requires_equal_text(self):
        p = Page(did="a", url="u", text="same text here")
        q = Page(did="b", url="u", text="same text here")
        r = Page(did="c", url="u", text="other text here")
        assert pages_identical(p, q)
        assert not pages_identical(p, r)
        assert not pages_identical(p, None)

    def test_pages_identical_survives_forged_fingerprint(self):
        # A stale/colliding fp field must not fool the check: text is
        # always compared.
        p = Page(did="a", url="u", text="one")
        q = Page(did="b", url="u", text="two", fp=p.fingerprint)
        assert not pages_identical(p, q)

    def test_snapshot_roundtrip_persists_fingerprint(self, tmp_path):
        snaps = list(dblife_corpus(n_pages=4, seed=0).snapshots(1))
        path = os.path.join(tmp_path, "snap.jsonl")
        write_snapshot(snaps[0], path)
        restored = read_snapshot(path)
        for page in restored.canonical_pages():
            assert page.fp != ""
            assert page.fp == content_fingerprint(page.text)


# -- match memo ------------------------------------------------------------


P_TEXT = "alpha beta gamma\ndelta epsilon\nzeta eta theta iota kappa\n"
Q_TEXT = "alpha beta gamma\nDELTA epsilon\nzeta eta theta iota kappa\n"


class TestMatchMemo:
    @pytest.mark.parametrize("matcher", [
        STMatcher(min_length=8), UDMatcher(), WinnowingMatcher()])
    def test_memo_equals_direct(self, matcher):
        region = Interval(0, len(P_TEXT))
        candidates = {7: Interval(0, len(Q_TEXT)),
                      9: Interval(0, 30), 3: Interval(17, 45)}
        direct = matcher.match_many(P_TEXT, region, Q_TEXT, candidates)
        memo = MatchMemo()
        routed = memo.match_many(matcher, P_TEXT, region, Q_TEXT,
                                 candidates)
        assert routed == direct
        # Second pass: all hits, still identical.
        again = memo.match_many(matcher, P_TEXT, region, Q_TEXT,
                                candidates)
        assert again == direct
        assert memo.stats.memo_hits == len(candidates)
        assert memo.stats.memo_misses == len(candidates)

    def test_retag_per_candidate(self):
        # Two candidates with the same interval share one memo entry
        # but keep their own itids.
        matcher = UDMatcher()
        region = Interval(0, len(P_TEXT))
        candidates = {5: Interval(0, len(Q_TEXT)),
                      8: Interval(0, len(Q_TEXT))}
        memo = MatchMemo()
        routed = memo.match_many(matcher, P_TEXT, region, Q_TEXT,
                                 candidates)
        assert routed == matcher.match_many(P_TEXT, region, Q_TEXT,
                                            candidates)
        assert memo.stats.memo_misses == 1
        assert memo.stats.memo_hits == 1
        assert {seg.q_itid for seg in routed} == {5, 8}

    def test_distinct_configs_do_not_collide(self):
        region = Interval(0, len(P_TEXT))
        candidates = {1: Interval(0, len(Q_TEXT))}
        memo = MatchMemo()
        loose = memo.match_many(STMatcher(min_length=8), P_TEXT, region,
                                Q_TEXT, candidates)
        strict = memo.match_many(STMatcher(min_length=26), P_TEXT, region,
                                 Q_TEXT, candidates)
        assert loose == STMatcher(min_length=8).match_many(
            P_TEXT, region, Q_TEXT, candidates)
        assert strict == STMatcher(min_length=26).match_many(
            P_TEXT, region, Q_TEXT, candidates)
        assert memo.stats.memo_misses == 2


class TestAutomatonCache:
    def test_reuse_same_region(self):
        cache = AutomatonCache()
        a = cache.get(Q_TEXT, Interval(0, 30))
        b = cache.get(Q_TEXT, Interval(0, 30))
        assert a is b
        assert cache.stats.automata_built == 1
        assert cache.stats.automata_reused == 1

    def test_distinct_regions_build_separately(self):
        cache = AutomatonCache()
        a = cache.get(Q_TEXT, Interval(0, 30))
        b = cache.get(Q_TEXT, Interval(5, 30))
        assert a is not b
        assert cache.stats.automata_built == 2

    def test_body_mismatch_rebuilds(self):
        # Same bounds, different text (misuse across page pairs) must
        # not return a stale automaton.
        cache = AutomatonCache()
        a = cache.get(Q_TEXT, Interval(0, 30))
        b = cache.get(P_TEXT, Interval(0, 30))
        assert a is not b

    def test_st_matcher_uses_cache(self):
        stats = FastPathStats()
        cache = AutomatonCache(stats)
        matcher = STMatcher(min_length=8, automatons=cache)
        region = Interval(0, len(P_TEXT))
        q_region = Interval(0, len(Q_TEXT))
        plain = STMatcher(min_length=8).match(P_TEXT, region, Q_TEXT,
                                              q_region)
        first = matcher.match(P_TEXT, region, Q_TEXT, q_region)
        second = matcher.match(P_TEXT, region, Q_TEXT, q_region)
        assert first == plain and second == plain
        assert stats.automata_built == 1
        assert stats.automata_reused == 1


# -- reuse-file byte accounting and the indexed reader ---------------------


def _write_reuse_file(path: str, groups):
    writer = ReuseFileWriter(path)
    for did, tuples in groups:
        writer.begin_page(did)
        for s, e in tuples:
            writer.append_input(did, s, e)
    writer.close()


class TestReaderBytes:
    def test_bytes_read_counts_utf8_bytes(self, tmp_path):
        # Multi-byte characters force len(chars) != len(bytes); the
        # block-based I/O cost model needs actual bytes. The stock
        # writer escapes non-ASCII, so build raw UTF-8 JSON lines.
        import json as _json

        path = os.path.join(tmp_path, "u.I.reuse")
        groups = [("pägé-αβ", [(0, 5), (5, 9)]), ("ズ-page", [(2, 7)])]
        lines = []
        tid = 0
        for did, tuples in groups:
            lines.append(_json.dumps({"@page": did}, ensure_ascii=False))
            for s, e in tuples:
                lines.append(_json.dumps(
                    {"t": tid, "s": s, "e": e, "c": "ü"},
                    ensure_ascii=False))
                tid += 1
        with open(path, "wb") as f:
            f.write(("\n".join(lines) + "\n").encode("utf-8"))
        reader = ReuseFileReader(path)
        for did, tuples in groups:
            got = reader.read_page_inputs(did)
            assert [(t.s, t.e) for t in got] == tuples
        reader._next_record()  # drain EOF
        assert reader.bytes_read == os.path.getsize(path)
        with open(path, encoding="utf-8") as f:
            n_chars = len(f.read())
        # The regression being guarded: text-mode counting (characters)
        # undercounts this file.
        assert reader.bytes_read > n_chars
        reader.close()

    def test_writer_byte_count_matches_file(self, tmp_path):
        path = os.path.join(tmp_path, "u.I.reuse")
        groups = [(f"p{i}", [(0, 5), (9, 30)]) for i in range(4)]
        _write_reuse_file(path, groups)
        reader = ReuseFileReader(path)
        for did, tuples in groups:
            assert [(t.s, t.e)
                    for t in reader.read_page_inputs(did)] == tuples
        reader._next_record()
        assert reader.bytes_read == os.path.getsize(path)
        assert reader.blocks_read >= 1
        reader.close()


class TestIndexedReader:
    def test_any_order_seeks_match_sequential(self, tmp_path):
        path = os.path.join(tmp_path, "u.I.reuse")
        groups = [(f"page-{i:02d}", [(i, i + 10), (i + 20, i + 30)])
                  for i in range(6)]
        _write_reuse_file(path, groups)
        expected = {}
        seq = ReuseFileReader(path)
        for did, _ in groups:
            expected[did] = [(t.s, t.e) for t in seq.read_page_inputs(did)]
        seq.close()
        indexed = IndexedReuseFileReader(path)
        assert len(indexed) == len(groups)
        order = [g[0] for g in groups]
        shuffled = order[::-1] + order[:2]  # backwards, then re-reads
        for did in shuffled:
            got = [(t.s, t.e) for t in indexed.read_page_inputs(did)]
            assert got == expected[did], did
        assert indexed.seeks == len(shuffled)
        assert indexed.bytes_read >= os.path.getsize(path)
        indexed.close()

    def test_missing_page_returns_empty(self, tmp_path):
        path = os.path.join(tmp_path, "u.I.reuse")
        _write_reuse_file(path, [("present", [(0, 4)])])
        indexed = IndexedReuseFileReader(path)
        assert indexed.read_page_inputs("absent") == []
        assert indexed.read_page_inputs("present") != []
        indexed.close()

    def test_multibyte_page_ids(self, tmp_path):
        path = os.path.join(tmp_path, "u.I.reuse")
        groups = [("π-page", [(0, 3)]), ("ascii", [(1, 5)]),
                  ("日本語", [(2, 9)])]
        _write_reuse_file(path, groups)
        indexed = IndexedReuseFileReader(path)
        for did, tuples in reversed(groups):
            assert [(t.s, t.e)
                    for t in indexed.read_page_inputs(did)] == tuples
        indexed.close()


class TestIndexedReaderEdgeCases:
    def test_empty_reuse_file(self, tmp_path):
        # A unit that saw no pages writes an empty file; the index
        # scan must handle it (0 groups, 0 bytes) and every seek miss.
        path = os.path.join(tmp_path, "u.I.reuse")
        _write_reuse_file(path, [])
        indexed = IndexedReuseFileReader(path)
        assert len(indexed) == 0
        assert indexed.bytes_read == 0
        assert not indexed.seek_page("anything")
        assert indexed.read_page_inputs("anything") == []
        assert indexed.seeks == 0
        indexed.close()

    def test_single_page_group(self, tmp_path):
        path = os.path.join(tmp_path, "u.I.reuse")
        _write_reuse_file(path, [("only", [(0, 4), (6, 9)])])
        indexed = IndexedReuseFileReader(path)
        assert len(indexed) == 1
        # Re-read the same group repeatedly: each seek rewinds to the
        # group start, so the result never depends on reader position.
        for _ in range(3):
            assert [(t.s, t.e) for t in indexed.read_page_inputs("only")] \
                == [(0, 4), (6, 9)]
        assert indexed.seeks == 3
        indexed.close()

    def test_missing_did_seek_leaves_position_intact(self, tmp_path):
        # A failed seek must not disturb the current read position:
        # the engine probes optional pages mid-scan.
        path = os.path.join(tmp_path, "u.I.reuse")
        _write_reuse_file(path, [("a", [(0, 1)]), ("b", [(2, 3)])])
        indexed = IndexedReuseFileReader(path)
        assert indexed.seek_page("a")
        assert not indexed.seek_page("nope")  # miss: no seek performed
        # Position still at group "a": its records are next.
        records = indexed.read_group("a")
        assert [(r["s"], r["e"]) for r in records] == [(0, 1)]
        assert indexed.seeks == 1
        indexed.close()

    def test_interleaved_sequential_then_indexed_reads(self, tmp_path):
        # The indexed reader subclasses the sequential one; after an
        # indexed seek the cursor continues *sequentially* into the
        # following groups, and a later indexed seek can jump back.
        path = os.path.join(tmp_path, "u.I.reuse")
        groups = [("a", [(0, 1)]), ("b", [(2, 3)]), ("c", [(4, 5)])]
        _write_reuse_file(path, groups)
        indexed = IndexedReuseFileReader(path)
        # Indexed jump into the middle ...
        assert indexed.seek_page("b")
        assert [(r["s"], r["e"])
                for r in indexed.read_group("b")] == [(2, 3)]
        # ... then plain sequential continuation into group "c"
        # (pushback of the marker + sequential read path).
        assert super(IndexedReuseFileReader, indexed).seek_page("c")
        assert [(r["s"], r["e"])
                for r in indexed.read_group("c")] == [(4, 5)]
        # ... then an indexed jump *backwards* to "a".
        assert indexed.seek_page("a")
        assert [(t.s, t.e)
                for t in indexed.read_page_inputs("a")] == [(0, 1)]
        indexed.close()


# -- capped UD stays well-formed (satellite: _prefix_suffix_pairs) ---------


LINES = st.lists(st.sampled_from(["a", "b", "c", "dd"]), max_size=14)


class TestCappedUDProperty:
    @given(a=LINES, b=LINES, max_d=st.integers(min_value=0, max_value=4))
    @settings(max_examples=200, deadline=None)
    def test_pairs_monotone_nonoverlapping_and_valid(self, a, b, max_d):
        pairs = myers_lcs_pairs(a, b, max_d=max_d)
        for i, j in pairs:
            assert 0 <= i < len(a) and 0 <= j < len(b)
            assert a[i] == b[j]
        for (i1, j1), (i2, j2) in zip(pairs, pairs[1:]):
            # Strictly increasing in both coordinates: monotone, no
            # index claimed twice, no crossing pairs.
            assert i2 > i1 and j2 > j1

    @given(a=LINES, b=LINES)
    @settings(max_examples=100, deadline=None)
    def test_uncapped_matches_capped_upper_bound(self, a, b):
        full = myers_lcs_pairs(a, b, max_d=0)
        capped = myers_lcs_pairs(a, b, max_d=2)
        assert len(capped) <= len(full)

    def test_prefix_never_reclaimed_by_suffix(self):
        # The crossing-pair regression: duplicated head/tail lines.
        pairs = myers_lcs_pairs(["x", "x"], ["x"], max_d=1)
        assert pairs == [(0, 0)] or pairs == [(1, 0)]


# -- end-to-end parity: fastpath on == fastpath off ------------------------


def _capture_tree(root):
    out = {}
    for dirpath, _, names in os.walk(root):
        for name in sorted(names):
            path = os.path.join(dirpath, name)
            with open(path, "rb") as f:
                out[os.path.relpath(path, root)] = f.read()
    return out


@pytest.fixture(scope="module")
def chair_task():
    return make_task("chair", work_scale=0)


@pytest.fixture(scope="module")
def parity_snaps():
    return list(dblife_corpus(n_pages=12, seed=11,
                              p_unchanged=0.6).snapshots(3))


class TestFastPathParity:
    def test_all_systems_results_identical(self, chair_task, parity_snaps):
        assert verify_fastpath(chair_task, parity_snaps,
                               systems=SYSTEM_NAMES) == []

    @pytest.mark.parametrize("matcher", [ST_NAME, UD_NAME, WS_NAME])
    def test_delex_reuse_files_byte_identical(self, chair_task,
                                              parity_snaps, tmp_path,
                                              matcher):
        plan = compile_program(chair_task.program, chair_task.registry)
        units = find_units(plan)
        assignment = PlanAssignment.uniform(units, matcher)
        trees, results = {}, {}
        for flag in ("on", "off"):
            workdir = os.path.join(tmp_path, flag)
            system = make_system("delex", chair_task, workdir,
                                 fastpath=flag,
                                 fixed_assignment=assignment,
                                 capture_history=10)
            prev = None
            series = []
            for snap in parity_snaps:
                result = system.process(snap, prev)
                series.append(canonical_results(result))
                prev = snap
            trees[flag] = _capture_tree(workdir)
            results[flag] = series
        assert results["on"] == results["off"]
        assert trees["on"].keys() == trees["off"].keys()
        for rel_path in trees["on"]:
            assert trees["on"][rel_path] == trees["off"][rel_path], rel_path

    def test_delex_mixed_ru_assignment_parity(self, chair_task,
                                              parity_snaps, tmp_path):
        # An RU unit disables the identity path plan-wide (it replays
        # the match cache the skipped matchers would have filled);
        # results must still agree with fastpath off.
        plan = compile_program(chair_task.program, chair_task.registry)
        units = find_units(plan)
        matchers = {u.uid: (ST_NAME if i == 0 else RU_NAME)
                    for i, u in enumerate(units)}
        assignment = PlanAssignment(matchers)
        results = {}
        for flag in ("on", "off"):
            system = make_system("delex", chair_task,
                                 os.path.join(tmp_path, flag),
                                 fastpath=flag,
                                 fixed_assignment=assignment)
            prev = None
            series = []
            for snap in parity_snaps:
                series.append(canonical_results(system.process(snap, prev)))
                prev = snap
            results[flag] = series
        assert results["on"] == results["off"]

    @pytest.mark.parametrize("matcher", [ST_NAME, UD_NAME])
    def test_cyclex_result_files_byte_identical(self, chair_task,
                                                parity_snaps, tmp_path,
                                                matcher):
        trees, results = {}, {}
        for flag in ("on", "off"):
            workdir = os.path.join(tmp_path, flag)
            system = make_system("cyclex", chair_task, workdir,
                                 fastpath=flag, fixed_matcher=matcher)
            prev = None
            series = []
            for snap in parity_snaps:
                result = system.process(snap, prev)
                series.append(canonical_results(result))
                prev = snap
            trees[flag] = _capture_tree(workdir)
            results[flag] = series
        assert results["on"] == results["off"]
        assert trees["on"] == trees["off"]

    def test_identical_snapshots_short_circuit_everything(self, chair_task):
        from repro.corpus.evolve import ChangeModel, EvolvingCorpus
        from repro.corpus.generators import DBLifeGenerator
        frozen = ChangeModel(p_unchanged=1.0, p_removed=0.0, p_added=0.0)
        snaps = list(EvolvingCorpus(DBLifeGenerator(), 8, frozen,
                                    seed=2).snapshots(2))
        plan = compile_program(chair_task.program, chair_task.registry)
        units = find_units(plan)
        assignment = PlanAssignment.uniform(units, ST_NAME)
        reports = run_series(
            chair_task, snaps, systems=("noreuse", "delex"),
            system_kwargs={"delex": {"fixed_assignment": assignment}},
            fastpath="on")
        fp = reports["delex"].snapshots[-1].timings.fastpath
        assert fp is not None
        assert fp.pages_paired > 0
        assert fp.pages_short_circuited == fp.pages_paired
        assert fp.unchanged_fraction == 1.0
        # And the short-circuited run still agrees with no-reuse.
        assert (reports["delex"].snapshots[-1].results
                == reports["noreuse"].snapshots[-1].results)

    def test_fastpath_off_reports_zero_counters(self, chair_task,
                                                parity_snaps):
        reports = run_series(chair_task, parity_snaps, systems=("delex",),
                             fastpath="off")
        fp = reports["delex"].snapshots[-1].timings.fastpath
        assert fp is not None
        assert fp.pages_short_circuited == 0
        assert fp.memo_hits == 0 and fp.automata_reused == 0

    def test_parallel_fastpath_matches_serial(self, chair_task,
                                              parity_snaps):
        serial = run_series(chair_task, parity_snaps, systems=("delex",),
                            jobs=1, fastpath="on")
        parallel = run_series(chair_task, parity_snaps, systems=("delex",),
                              jobs=2, backend="thread", fastpath="on")
        for s_snap, p_snap in zip(serial["delex"].snapshots,
                                  parallel["delex"].snapshots):
            assert s_snap.results == p_snap.results


class TestStatsPlumbing:
    def test_merge_accumulates(self):
        a = FastPathStats(pages_paired=2, memo_hits=3,
                          memo_seconds_saved=0.5)
        b = FastPathStats(pages_paired=1, memo_hits=1, automata_built=4)
        a.merge(b)
        assert a.pages_paired == 3
        assert a.memo_hits == 4
        assert a.automata_built == 4
        assert a.memo_seconds_saved == 0.5

    def test_as_dict_and_describe(self):
        stats = FastPathStats(pages_paired=4, pages_short_circuited=2,
                              memo_hits=1, memo_misses=1)
        row = stats.as_dict()
        assert row["memo_hit_rate"] == 0.5
        assert stats.unchanged_fraction == 0.5
        assert "short-circuited 2/4" in stats.describe()
