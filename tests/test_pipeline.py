"""Durable pipeline: persistence, resume, catch-up semantics."""

import pytest

from repro.core.noreuse import NoReuseSystem
from repro.core.pipeline import DelexPipeline
from repro.core.runner import canonical_results
from repro.corpus import CorpusStore, wikipedia_corpus
from repro.extractors import make_task
from repro.plan import compile_program


@pytest.fixture()
def store(tmp_path):
    return CorpusStore(str(tmp_path / "crawl"))


@pytest.fixture(scope="module")
def snapshots():
    return list(wikipedia_corpus(n_pages=8, seed=23).snapshots(4))


def fast_play():
    return make_task("play", work_scale=0)


class TestPipeline:
    def test_catch_up_processes_all(self, store, snapshots):
        for snap in snapshots[:3]:
            store.append(snap)
        pipeline = DelexPipeline(store, fast_play(), sample_size=3)
        processed = pipeline.catch_up()
        assert [i for i, _ in processed] == [0, 1, 2]
        assert pipeline.pending_indexes() == []

    def test_results_match_from_scratch(self, store, snapshots):
        for snap in snapshots[:3]:
            store.append(snap)
        task = fast_play()
        pipeline = DelexPipeline(store, task, sample_size=3)
        pipeline.catch_up()
        plan = compile_program(task.program, task.registry)
        for snap in snapshots[:3]:
            expected = canonical_results(NoReuseSystem(plan).process(snap))
            assert pipeline.load_results(snap.index) == expected

    def test_resume_after_restart(self, store, snapshots):
        # Non-zero extractor cost so the optimizer actually chooses to
        # match (with free extraction, all-DN is the optimal plan).
        task = make_task("play", work_scale=0.1)
        for snap in snapshots[:2]:
            store.append(snap)
        first = DelexPipeline(store, task, sample_size=3)
        first.catch_up()
        del first

        # New process: append two more snapshots, rebuild the pipeline.
        store.append(snapshots[2])
        fresh = DelexPipeline(store, make_task("play", work_scale=0.1),
                              sample_size=3)
        assert fresh.processed_index == 1
        assert fresh.pending_indexes() == [2]
        processed = fresh.catch_up()
        assert [i for i, _ in processed] == [2]
        # Resumed run still recycles the pre-restart capture.
        copied = sum(s.copied_tuples
                     for s in processed[0][1].unit_stats.values())
        assert copied > 0
        # And its results agree with from-scratch extraction.
        plan = compile_program(task.program, task.registry)
        expected = canonical_results(
            NoReuseSystem(plan).process(snapshots[2]))
        assert fresh.load_results(2) == expected

    def test_ingest_appends_and_processes(self, store, snapshots):
        pipeline = DelexPipeline(store, fast_play(), sample_size=3)
        result = pipeline.ingest(snapshots[0])
        assert result.pages == len(snapshots[0])
        assert pipeline.processed_index == 0
        assert store.latest_index == 0

    def test_task_mismatch_rejected(self, store, snapshots):
        import os

        store.append(snapshots[0])
        pipeline = DelexPipeline(store, fast_play(), sample_size=3)
        pipeline.catch_up()
        # Simulate pointing a different task at this task's workdir.
        os.rename(os.path.join(store.root, "reuse", "delex_play"),
                  os.path.join(store.root, "reuse", "delex_award"))
        with pytest.raises(ValueError, match="belongs to task"):
            DelexPipeline(store, make_task("award", work_scale=0))

    def test_load_results_missing(self, store, snapshots):
        pipeline = DelexPipeline(store, fast_play(), sample_size=3)
        with pytest.raises(KeyError):
            pipeline.load_results(0)
