"""Property-based validation of the (α, β) reuse-safety argument.

This drives :func:`derive_reuse` directly, below the engine: a
position-deterministic toy extractor runs on a "previous" region, its
outputs are recorded; the region then evolves; real matchers produce
segments; and the invariant checked is exactly Theorem 1's kernel:

    copied mentions ∪ (filtered) re-extracted mentions
        ==  extractor(current region)

for random texts, random edits, and both ST and UD matchers.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extractors.base import Extraction, Extractor, RelSpan
from repro.matchers.base import MatchCache
from repro.matchers.registry import make_matcher
from repro.reuse.files import InputTuple, OutputTuple, encode_fields
from repro.reuse.regions import derive_reuse, extraction_keep
from repro.text.regions import MatchSegment
from repro.text.span import Interval, Span


class ToyExtractor(Extractor):
    """Extracts every 'w<digit>' token whose β-context contains no '!'.

    Scope: tokens are 2 chars (< α=8). Context: the veto character is
    only looked for within ``context`` chars of the token, so the
    declared β is honest.
    """

    def __init__(self, beta: int) -> None:
        super().__init__("toy", ["v"], scope=8, context=beta)

    def _extract(self, text):
        for i in range(len(text) - 1):
            if text[i] == "w" and text[i + 1].isdigit():
                lo = max(0, i - self.context)
                hi = min(len(text), i + 2 + self.context)
                if "!" not in text[lo:hi]:
                    yield Extraction.of(v=RelSpan(i, i + 2))


ALPHABET = "ab w123!\n"


def random_text(rng, n):
    return "".join(rng.choice(ALPHABET) for _ in range(n))


def evolve(rng, text):
    out = list(text)
    for _ in range(rng.randint(1, 4)):
        op = rng.random()
        pos = rng.randrange(max(1, len(out)))
        if op < 0.4 and out:
            out[pos:pos] = list(random_text(rng, rng.randint(1, 6)))
        elif op < 0.7 and len(out) > 2:
            del out[pos:pos + rng.randint(1, 3)]
        elif out:
            out[pos] = rng.choice(ALPHABET)
    return "".join(out)


def mentions_of(extractor, text, base=0):
    return {(e.get("v").start + base, e.get("v").end + base)
            for e in extractor.extract(text)}


@settings(max_examples=120, deadline=None)
@given(seed=st.integers(0, 100_000),
       beta=st.integers(0, 6),
       matcher_name=st.sampled_from(["ST", "UD", "WS"]))
def test_derive_reuse_is_exact(seed, beta, matcher_name):
    rng = random.Random(seed)
    extractor = ToyExtractor(beta)
    q_text = random_text(rng, rng.randint(0, 120))
    p_text = evolve(rng, q_text)

    # 1. "Previous run": record the extractor's outputs on q.
    q_region = Interval(0, len(q_text))
    q_inputs = {0: InputTuple(0, "q", 0, len(q_text))}
    q_outputs = {0: [
        OutputTuple(i, 0, encode_fields({"v": Span("q", s, e)}))
        for i, (s, e) in enumerate(sorted(mentions_of(extractor, q_text)))
    ]}

    # 2. Match, derive, copy, re-extract — the unit-execution kernel.
    p_region = Interval(0, len(p_text))
    matcher = make_matcher(matcher_name, MatchCache(),
                           min_length=max(4, 2 * beta + 2))
    segments = [
        MatchSegment(s.p_start, s.q_start, s.length, 0)
        for s in matcher.match(p_text, p_region, q_text, q_region)
    ]
    derivation = derive_reuse(p_region, "p", segments, q_inputs,
                              q_outputs, alpha=extractor.scope,
                              beta=extractor.context)
    got = {(f["v"].start, f["v"].end) for f in derivation.copied}
    for er in derivation.extraction_regions:
        for s, e in mentions_of(extractor, p_text[er.start:er.end],
                                base=er.start):
            if extraction_keep((s, e), er, p_region, beta):
                got.add((s, e))

    # 3. The kernel invariant: exactly the from-scratch mentions.
    expected = mentions_of(extractor, p_text)
    assert got == expected, (
        f"beta={beta} matcher={matcher_name}\n"
        f"q={q_text!r}\np={p_text!r}\n"
        f"missing={expected - got} spurious={got - expected}")


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000), beta=st.integers(0, 4))
def test_derive_reuse_exact_on_identical_text(seed, beta):
    """Identical region: everything must be copied, nothing extracted."""
    rng = random.Random(seed)
    extractor = ToyExtractor(beta)
    text = random_text(rng, rng.randint(1, 100))
    q_inputs = {0: InputTuple(0, "q", 0, len(text))}
    q_outputs = {0: [
        OutputTuple(i, 0, encode_fields({"v": Span("q", s, e)}))
        for i, (s, e) in enumerate(sorted(mentions_of(extractor, text)))
    ]}
    matcher = make_matcher("UD", MatchCache())
    region = Interval(0, len(text))
    segments = [MatchSegment(s.p_start, s.q_start, s.length, 0)
                for s in matcher.match(text, region, text, region)]
    derivation = derive_reuse(region, "p", segments, q_inputs, q_outputs,
                              alpha=extractor.scope, beta=beta)
    assert derivation.extraction_regions == []
    got = {(f["v"].start, f["v"].end) for f in derivation.copied}
    assert got == mentions_of(extractor, text)
