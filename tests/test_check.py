"""Tests for repro.check — the differential correctness harness.

A harness is only trustworthy if it has been *seen* to catch bugs, so
half of this file runs the harness against deliberately planted faults
(:mod:`repro.check.faults`) and asserts the oracle reports them, the
shrinker minimizes them, and the repro bundle replays them. The other
half unit-tests the invariant layer and the sweep plumbing.
"""

from __future__ import annotations

import random

import pytest

from repro.check import InvariantViolation, invariants
from repro.check.bundle import load_bundle, replay_bundle, write_bundle
from repro.check.faults import FAULTS, active_fault, injected_fault
from repro.check.fuzz import (
    FuzzSpec,
    build_series,
    oracle_predicate,
    run_case,
    shrink_series,
)
from repro.check.grid import (
    CheckConfig,
    build_grid,
    make_assignment,
    reference_config,
)
from repro.check.oracle import build_reference, diff_results, run_oracle
from repro.check.runner import run_check
from repro.extractors import make_task
from repro.text.span import Interval, Span


#: The standard copy-heavy fixture: wikipedia churn keeps most text
#: shared between versions, so delex's copy path is exercised hard.
SPEC = FuzzSpec(seed=0, task="play", corpus="wikipedia",
                n_pages=6, n_snapshots=3, grid="small")


@pytest.fixture(scope="module")
def series():
    return build_series(SPEC)


@pytest.fixture(scope="module")
def play_task():
    return make_task("play", work_scale=0)


# -- invariants -------------------------------------------------------------

class _Zone:
    def __init__(self, start, end, shift=0, q_itid=0):
        self.zone = Interval(start, end)
        self.shift = shift
        self.q_itid = q_itid


class _Derivation:
    def __init__(self, zones=(), regions=(), copied=()):
        self.copy_zones = list(zones)
        self.extraction_regions = list(regions)
        self.copied = list(copied)


class TestInvariants:
    def test_disabled_by_default(self):
        assert invariants.ENABLED is False

    def test_checking_restores_previous_state(self):
        assert not invariants.ENABLED
        with invariants.checking(True):
            assert invariants.ENABLED
            with invariants.checking(False):
                assert not invariants.ENABLED
            assert invariants.ENABLED
        assert not invariants.ENABLED

    def test_good_derivation_passes(self):
        r = Interval(0, 100)
        d = _Derivation(zones=[_Zone(10, 30), _Zone(40, 60)],
                        regions=[Interval(0, 15), Interval(25, 45),
                                 Interval(55, 100)],
                        copied=[{"x": Span("p", 12, 28)}])
        invariants.check_derivation(d, r, alpha=5, beta=2)

    def test_zone_outside_region_raises(self):
        with pytest.raises(InvariantViolation, match="containment"):
            invariants.check_derivation(
                _Derivation(zones=[_Zone(10, 120)],
                            regions=[Interval(0, 100)]),
                Interval(0, 100), alpha=1, beta=1)

    def test_unseparated_zones_raise(self):
        with pytest.raises(InvariantViolation, match="separation"):
            invariants.check_derivation(
                _Derivation(zones=[_Zone(0, 10), _Zone(10, 20)],
                            regions=[]),
                Interval(0, 100), alpha=1, beta=1)

    def test_uncovered_gap_raises(self):
        with pytest.raises(InvariantViolation, match="coverage"):
            invariants.check_derivation(
                _Derivation(zones=[_Zone(0, 40)],
                            regions=[Interval(40, 60)]),
                Interval(0, 100), alpha=1, beta=1)

    def test_copied_outside_zone_raises(self):
        with pytest.raises(InvariantViolation, match="copied-extent"):
            invariants.check_derivation(
                _Derivation(zones=[_Zone(0, 100)],
                            regions=[Interval(100, 120)],
                            copied=[{"x": Span("p", 90, 110)}]),
                Interval(0, 120), alpha=1, beta=1)

    def test_rows_in_page(self):
        class P:
            did = "d"
            text = "0123456789"

        invariants.check_rows_in_page([{"x": Span("d", 0, 10)}], P())
        with pytest.raises(InvariantViolation, match="span-in-page"):
            invariants.check_rows_in_page([{"x": Span("d", 5, 11)}], P())
        with pytest.raises(InvariantViolation, match="anchor"):
            invariants.check_rows_in_page([{"x": Span("q", 0, 3)}], P())

    def test_page_order(self):
        invariants.check_page_order(["a", "b", "c"])
        with pytest.raises(InvariantViolation, match="monotonic"):
            invariants.check_page_order(["a", "c", "b"])

    def test_memo_replay(self):
        class Seg:
            def __init__(self, p, q, n):
                self.p_start, self.q_start, self.length = p, q, n

        invariants.check_memo_replay([Seg(0, 2, 3)], "abcx", "xxabc",
                                     Interval(0, 4), Interval(0, 5))
        with pytest.raises(InvariantViolation, match="retag"):
            invariants.check_memo_replay([Seg(0, 0, 3)], "abcx",
                                         "xxabc", Interval(0, 4),
                                         Interval(0, 5))

    def test_counter_counts(self):
        invariants.reset_counter()
        invariants.check_page_order(["a"])
        invariants.check_page_order(["a", "b"])
        assert invariants.checks_run == 2


# -- grid -------------------------------------------------------------------

class TestGrid:
    def test_small_and_full_sizes(self):
        small, full = build_grid("small"), build_grid("full")
        assert 10 <= len(small) < len(full)
        ids = [c.config_id for c in full]
        assert len(ids) == len(set(ids))

    def test_every_capture_group_has_a_serial_off_baseline(self):
        for name in ("small", "full"):
            groups = {}
            for cfg in build_grid(name):
                if cfg.capture_comparable():
                    groups.setdefault(cfg.capture_group(), []).append(cfg)
            for key, members in groups.items():
                assert any(c.backend == "serial" and c.fastpath == "off"
                           for c in members), key

    def test_auto_policy_not_capture_comparable(self):
        assert not CheckConfig(system="delex",
                               policy="auto").capture_comparable()
        assert CheckConfig(system="delex",
                           policy="UD").capture_comparable()
        assert not CheckConfig(system="noreuse").capture_comparable()

    def test_config_dict_round_trip(self):
        for cfg in build_grid("full"):
            assert CheckConfig.from_dict(cfg.as_dict()) == cfg

    def test_system_kwargs(self, play_task):
        kw = CheckConfig(system="delex",
                         policy="mixed").system_kwargs(play_task)
        assert "fixed_assignment" in kw
        assert CheckConfig(system="cyclex", policy="ST").system_kwargs(
            play_task) == {"fixed_matcher": "ST"}
        with pytest.raises(ValueError):
            CheckConfig(system="noreuse",
                        policy="UD").system_kwargs(play_task)
        with pytest.raises(ValueError):
            make_assignment(play_task, "bogus")

    def test_reference_config_is_fromscratch_serial(self):
        ref = reference_config()
        assert (ref.system, ref.backend, ref.jobs) == ("noreuse",
                                                       "serial", 1)


# -- oracle -----------------------------------------------------------------

class TestOracle:
    def test_clean_sweep_agrees(self, play_task, series):
        report = run_oracle(play_task, series, build_grid("small"),
                            check=True)
        assert report.ok, report.summary()
        assert len(report.outcomes) == len(build_grid("small"))
        assert all(o.snapshots_run == len(series)
                   for o in report.outcomes)
        # The invariant layer really ran during the sweep.
        assert report.checks_run > 100
        # ... and is off again afterwards (no leakage).
        assert not invariants.ENABLED

    def test_reference_attribution_names_the_page(self, play_task,
                                                  series):
        reference = build_reference(play_task, series)
        snap = reference.results[0]
        rel = next(r for r in snap if snap[r])
        victim = next(iter(snap[rel]))
        mutilated = dict(snap)
        mutilated[rel] = snap[rel] - {victim}
        disc = diff_results(reference, mutilated, 0, "test-config")
        assert disc is not None and disc.kind == "results"
        assert disc.missing == (victim,)
        assert disc.pages and "?" not in disc.pages

    def test_error_becomes_discrepancy(self, play_task, series):
        bad = CheckConfig(system="delex", policy="WS")  # no WS in delex?
        report = run_oracle(play_task, series, [bad])
        # Whether WS works or not, the report must never raise; if it
        # ran, it must agree.
        for outcome in report.outcomes:
            for disc in outcome.discrepancies:
                assert disc.kind in ("results", "capture", "error",
                                     "invariant")


# -- faults through the oracle ---------------------------------------------

class TestFaultsAreCaught:
    def test_fault_registry_and_restore(self):
        assert set(FAULTS) == {"drop_copied", "shift_copied",
                               "drop_extraction_region"}
        assert active_fault() is None
        with injected_fault("drop_copied"):
            assert active_fault() == "drop_copied"
        assert active_fault() is None
        with pytest.raises(ValueError):
            with injected_fault("nope"):
                pass

    @pytest.mark.parametrize("fault", ["drop_copied", "shift_copied"])
    def test_oracle_catches_planted_fault(self, fault):
        with injected_fault(fault):
            report = run_case(SPEC)
        assert not report.ok, f"fault {fault} survived the oracle"
        kinds = {d.kind for d in report.discrepancies()}
        assert kinds <= {"results", "capture", "invariant", "error"}

    @staticmethod
    def _two_gap_derivation():
        """A derivation with two extraction regions — the trigger
        condition of ``drop_extraction_region``, which real fuzz pages
        (shorter than the tasks' α) never produce."""
        from repro.reuse.files import InputTuple
        from repro.reuse.regions import derive_reuse
        from repro.text.regions import MatchSegment

        p_region = Interval(0, 400)
        q_inputs = {0: InputTuple(tid=0, did="q", s=0, e=400)}
        segments = [MatchSegment(0, 0, 120, 0),
                    MatchSegment(150, 150, 120, 0),
                    MatchSegment(300, 300, 100, 0)]
        return derive_reuse(p_region, "p", segments, q_inputs, {},
                            alpha=5, beta=2)

    def test_drop_extraction_region_breaks_coverage_invariant(self):
        clean = self._two_gap_derivation()
        assert len(clean.extraction_regions) == 2
        invariants.check_derivation(clean, Interval(0, 400), 5, 2)
        with injected_fault("drop_extraction_region"):
            bad = self._two_gap_derivation()
        assert len(bad.extraction_regions) == 1
        # The corrupted derivation no longer covers the dropped gap —
        # exactly what the coverage invariant exists to catch.
        with pytest.raises(InvariantViolation, match="coverage"):
            invariants.check_derivation(bad, Interval(0, 400), 5, 2)

    def test_shift_copied_caught_with_checking_enabled(self, play_task,
                                                       series):
        # The invariant layer must not mask the oracle: a sweep run
        # under --check on still reports the planted divergence.
        with injected_fault("shift_copied"):
            report = run_oracle(play_task, series, build_grid("small"),
                                check=True)
        assert not report.ok


# -- shrinking --------------------------------------------------------------

class TestShrinking:
    def test_fault_shrinks_to_tiny_series(self):
        """Acceptance: a planted fault shrinks to <= 3 pages x <= 2
        snapshots."""
        with injected_fault("drop_copied"):
            report = run_case(SPEC)
            assert not report.ok
            result = shrink_series(build_series(SPEC),
                                   oracle_predicate(SPEC), report)
        assert result.n_snapshots <= 2
        assert result.n_pages <= 3
        assert not result.report.ok
        assert result.evaluations > 0

    def test_shrinker_on_synthetic_predicate(self, series):
        """Pure-shrinker test: failure iff a specific page survives in
        at least 2 snapshots — the minimum must be exactly that page."""
        target = series[0].pages[0].url

        def failing(candidate):
            hits = sum(1 for s in candidate
                       for p in s.pages if p.url == target)
            return object() if hits >= 2 else None

        result = shrink_series(series, failing, object())
        assert result.n_snapshots == 2
        assert result.n_pages == 1
        assert {p.url for s in result.series for p in s.pages} == {target}


# -- bundles ----------------------------------------------------------------

class TestBundles:
    def test_round_trip_and_replay(self, tmp_path):
        with injected_fault("drop_copied"):
            report = run_case(SPEC)
            assert not report.ok
            result = shrink_series(build_series(SPEC),
                                   oracle_predicate(SPEC), report)
        path = write_bundle(str(tmp_path / "bundle"), result.series,
                            task=SPEC.task, grid=SPEC.grid,
                            report=result.report, spec=SPEC,
                            fault="drop_copied")
        bundle = load_bundle(path)
        assert bundle.fault == "drop_copied"
        assert bundle.spec == SPEC
        assert bundle.n_snapshots == result.n_snapshots
        assert bundle.discrepancies
        # Replay re-injects the recorded fault: still diverges.
        replayed = replay_bundle(path)
        assert not replayed.ok
        # The fault is scoped to the replay only.
        assert active_fault() is None

    def test_clean_bundle_replays_green(self, tmp_path, series):
        path = write_bundle(str(tmp_path / "clean"), series[:2],
                            task=SPEC.task, grid="small")
        replayed = replay_bundle(path)
        assert replayed.ok, replayed.summary()


# -- fuzzer determinism -----------------------------------------------------

class TestFuzzer:
    def test_same_seed_same_series(self):
        def fingerprint(spec):
            return [[(p.url, p.text) for p in s.pages]
                    for s in build_series(spec)]

        assert fingerprint(SPEC) == fingerprint(SPEC)
        assert fingerprint(SPEC) != fingerprint(
            FuzzSpec(seed=1, task=SPEC.task, corpus=SPEC.corpus,
                     n_pages=SPEC.n_pages,
                     n_snapshots=SPEC.n_snapshots))

    def test_global_random_untouched_by_fuzzer(self):
        random.seed(999)
        before = random.getstate()
        build_series(SPEC)
        assert random.getstate() == before

    def test_mutations_actually_fire(self):
        """Across a handful of seeds the schedule must produce its
        adversarial shapes: fresh fuzz urls (rename/duplicate), blank
        pages, and non-ASCII text."""
        fresh = blank = unicode_ = False
        for seed in range(8):
            for snapshot in build_series(FuzzSpec(seed=seed,
                                                  n_snapshots=4)):
                for page in snapshot.pages:
                    if "fuzz.example.org" in page.url:
                        fresh = True
                    if not page.text.strip():
                        blank = True
                    if any(ord(ch) > 127 for ch in page.text):
                        unicode_ = True
        assert fresh and blank and unicode_

    def test_spec_round_trip(self):
        assert FuzzSpec.from_dict(SPEC.as_dict()) == SPEC


# -- campaign runner --------------------------------------------------------

class TestRunCheck:
    def test_clean_campaign_passes(self):
        summary = run_check(seed=0, budget=3.0, grid="small",
                            check=True)
        assert summary.ok
        assert summary.cases_run >= 1
        assert summary.checks_run > 0
        assert "PASS" in summary.describe()

    def test_fault_campaign_fails_and_writes_bundle(self, tmp_path):
        bundle_dir = str(tmp_path / "bundle")
        summary = run_check(seed=0, budget=30.0, grid="small",
                            fault="drop_copied", bundle_dir=bundle_dir)
        assert not summary.ok
        assert summary.shrink is not None
        assert summary.shrink.n_snapshots <= 2
        assert summary.shrink.n_pages <= 3
        assert summary.bundle_path == bundle_dir
        assert load_bundle(bundle_dir).fault == "drop_copied"
        assert "FAIL" in summary.describe()
