"""Property tests: ST and WS matchers vs brute-force references.

The ST matcher's contract is exact: streaming the p-region through a
suffix automaton of the q-region yields the *matching statistics*
profile L[i] (the longest substring of q ending at each p position),
and its segments are precisely the local maxima of that profile with
``L >= min_length``. The brute-force reference here recomputes L by
O(n^2) substring search and re-derives the peak set independently, so
any automaton bug (clone bookkeeping, link walks, first-occurrence end
positions) shows up as a set mismatch on some small-alphabet input —
exactly the regime where suffix structures are thick with clones.

WS (winnowing) is deliberately lossy, so exact parity is the wrong
spec; its reference properties are soundness and maximality against a
brute-force enumeration of all maximal equal runs: every WS segment
must *be* one of the reference runs (same start, same shift, same
maximal length), and byte-identical regions must yield the full-region
run (the property the reuse engine's wholesale-copy path leans on).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.fastpath.memo import AutomatonCache  # noqa: E402
from repro.matchers.st import STMatcher, SuffixAutomaton  # noqa: E402
from repro.matchers.ws import WinnowingMatcher  # noqa: E402
from repro.text.span import Interval  # noqa: E402

#: Small alphabets maximize repeated substrings (the hard case for
#: suffix automata) while keeping the brute-force references fast.
SMALL = st.text(alphabet="ab", max_size=32)
SMALLER = st.text(alphabet="abc", max_size=24)
#: Padding from a disjoint alphabet, so region arithmetic is exercised
#: without accidentally extending matches across region edges.
PAD = st.text(alphabet="xyz", max_size=5)

COMMON = settings(deadline=None, max_examples=150)


# -- brute-force references -------------------------------------------------

def matching_statistics(p: str, q: str) -> list:
    """L[i] = length of the longest suffix of p[:i+1] occurring in q."""
    stats = []
    for i in range(len(p)):
        best = 0
        for length in range(min(i + 1, len(q)), 0, -1):
            if p[i - length + 1:i + 1] in q:
                best = length
                break
        stats.append(best)
    return stats


def reference_peaks(p: str, q: str, min_length: int) -> set:
    """The (p_end, length) local maxima of the matching statistics."""
    stats = matching_statistics(p, q)
    peaks = set()
    for i, length in enumerate(stats):
        if length < min_length:
            continue
        if i + 1 == len(stats) or stats[i + 1] != length + 1:
            peaks.add((i, length))
    return peaks


def maximal_runs(p: str, q: str, min_length: int) -> set:
    """All maximal equal runs, as (p_start, q_start, length) triples."""
    runs = set()
    for shift in range(-len(q) + 1, len(p)):
        i = max(0, shift)
        while i < len(p):
            j = i - shift
            if 0 <= j < len(q) and p[i] == q[j]:
                start = i
                while i < len(p) and i - shift < len(q) \
                        and p[i] == q[i - shift]:
                    i += 1
                if i - start >= min_length:
                    runs.add((start, start - shift, i - start))
            else:
                i += 1
    return runs


# -- ST ---------------------------------------------------------------------

@COMMON
@given(p=SMALL, q=SMALL, pad_p=PAD, pad_q=PAD,
       min_length=st.integers(min_value=1, max_value=6))
def test_st_peak_parity_with_brute_force(p, q, pad_p, pad_q, min_length):
    """ST's segment set == the brute-force matching-statistics peaks."""
    p_text = pad_p + p
    q_text = pad_q + q
    p_region = Interval(len(pad_p), len(p_text))
    q_region = Interval(len(pad_q), len(q_text))
    segments = STMatcher(min_length=min_length).match(
        p_text, p_region, q_text, q_region)
    got = {(seg.p_start - p_region.start + seg.length - 1, seg.length)
           for seg in segments}
    assert got == reference_peaks(p, q, min_length)
    for seg in segments:
        # Witness: the claimed q occurrence is literal text equality,
        # inside the q region.
        assert q_region.start <= seg.q_start
        assert seg.q_start + seg.length <= q_region.end
        assert (p_text[seg.p_start:seg.p_start + seg.length]
                == q_text[seg.q_start:seg.q_start + seg.length])


@COMMON
@given(p=SMALLER, q=SMALLER,
       floor=st.integers(min_value=1, max_value=8))
def test_st_length_floor(p, q, floor):
    """Raising min_length keeps exactly the peaks at or above it."""
    whole_p = Interval(0, len(p))
    whole_q = Interval(0, len(q))
    base = STMatcher(min_length=1).match(p, whole_p, q, whole_q)
    floored = STMatcher(min_length=floor).match(p, whole_p, q, whole_q)
    assert {(s.p_start, s.length) for s in floored} \
        == {(s.p_start, s.length) for s in base if s.length >= floor}
    assert all(s.length >= floor for s in floored)


@COMMON
@given(p=SMALL, q=SMALL)
def test_st_automaton_cache_is_behaviour_preserving(p, q):
    """The probe-peak reuse path: a cached automaton (AutomatonCache)
    yields byte-identical segments to a freshly built one, and the
    second probe reuses instead of rebuilding."""
    p_region, q_region = Interval(0, len(p)), Interval(0, len(q))
    plain = STMatcher(min_length=2).match(p, p_region, q, q_region)
    cache = AutomatonCache()
    cached_matcher = STMatcher(min_length=2, automatons=cache)
    first = cached_matcher.match(p, p_region, q, q_region)
    second = cached_matcher.match(p, p_region, q, q_region)
    assert first == plain
    assert second == plain
    if p and q:
        assert cache.stats.automata_built == 1
        assert cache.stats.automata_reused == 1


@COMMON
@given(q=SMALL)
def test_st_first_end_is_a_real_occurrence(q):
    """Every automaton state's first_end is an occurrence end of every
    string the state represents (checked via the matcher on p == q)."""
    if not q:
        return
    sam = SuffixAutomaton(q)
    for state in range(1, len(sam.length)):
        end = sam.first_end[state]
        assert 0 <= end < len(q)
        # The state's longest string ends at first_end.
        length = sam.length[state]
        assert length <= end + 1


# -- WS ---------------------------------------------------------------------

@COMMON
@given(p=SMALL, q=SMALL, pad_p=PAD, pad_q=PAD)
def test_ws_segments_are_reference_maximal_runs(p, q, pad_p, pad_q):
    """Every WS segment equals a brute-force maximal equal run —
    soundness (literal equality) and maximality (inextensible) in one
    assertion, since the reference set contains only maximal runs."""
    k = 3
    p_text = pad_p + p
    q_text = pad_q + q
    p_region = Interval(len(pad_p), len(p_text))
    q_region = Interval(len(pad_q), len(q_text))
    matcher = WinnowingMatcher(k=k, window=2)
    segments = matcher.match(p_text, p_region, q_text, q_region)
    reference = maximal_runs(p, q, k)
    for seg in segments:
        rel = (seg.p_start - p_region.start,
               seg.q_start - q_region.start, seg.length)
        assert rel in reference, (rel, reference)


@COMMON
@given(body=st.text(alphabet="abc", min_size=3, max_size=40), pad=PAD)
def test_ws_identical_regions_yield_full_region_segment(body, pad):
    """Byte-identical regions must produce the whole-region run (what
    makes a fully unchanged input region wholesale-copyable)."""
    p_text = pad + body
    q_text = body
    p_region = Interval(len(pad), len(p_text))
    q_region = Interval(0, len(q_text))
    matcher = WinnowingMatcher(k=3, window=2)
    segments = matcher.match(p_text, p_region, q_text, q_region)
    assert any(seg.p_start == p_region.start
               and seg.q_start == q_region.start
               and seg.length == len(body) for seg in segments)


@COMMON
@given(p=SMALL, q=SMALL)
def test_ws_never_reports_below_k(p, q):
    matcher = WinnowingMatcher(k=4, window=3)
    segments = matcher.match(p, Interval(0, len(p)),
                             q, Interval(0, len(q)))
    assert all(seg.length >= 4 for seg in segments)
