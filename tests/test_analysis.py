"""Capture-file analysis helpers."""

import os

import pytest

from repro.core.runner import canonical_results  # noqa: F401 (API parity)
from repro.corpus.snapshot import snapshot_from_texts
from repro.plan import compile_program, find_units
from repro.reuse.analysis import analyze_capture, mentions_per_page
from repro.reuse.engine import PlanAssignment, ReuseEngine
from repro.extractors import make_task


@pytest.fixture()
def capture(tmp_path):
    task = make_task("play", work_scale=0)
    plan = compile_program(task.program, task.registry)
    units = find_units(plan)
    engine = ReuseEngine(plan, units, PlanAssignment.all_dn(units))
    text = ("== Filmography ==\n"
            "Nina Weber starred as Dr. Malone in Crimson Harbor (1999).\n"
            "Ivan Rossi starred as Agent Carter in Paper Kingdom (2001).\n")
    snap = snapshot_from_texts(0, {"u1": text, "u2": text, "u3": "empty"})
    out = str(tmp_path / "cap")
    result = engine.run_snapshot(snap, None, None, out)
    return out, units, snap, result


class TestAnalyzeCapture:
    def test_per_unit_stats(self, capture):
        out, units, snap, result = capture
        report = analyze_capture(out, units)
        assert set(report.units) == {u.uid for u in units}
        for uid, stats in report.units.items():
            assert stats.pages == len(snap)
            assert stats.input_tuples == \
                result.unit_stats[uid].input_tuples
            assert stats.output_tuples == \
                result.unit_stats[uid].output_tuples

    def test_totals_and_bound(self, capture):
        out, units, snap, _ = capture
        report = analyze_capture(out, units)
        assert report.total_bytes > 0
        assert report.total_blocks >= len(units) * 2
        assert report.within_paper_bound(snap.total_bytes())

    def test_render(self, capture):
        out, units, _, _ = capture
        text = analyze_capture(out, units).render()
        assert "extractFilmSec" in text
        assert "total:" in text

    def test_missing_directory(self):
        with pytest.raises(FileNotFoundError):
            analyze_capture("/nonexistent/capture/dir")

    def test_unfiltered_scan(self, capture):
        out, units, _, _ = capture
        report = analyze_capture(out)
        assert len(report.units) == len(units)


class TestMentionsPerPage:
    def test_counts_in_page_order(self, capture):
        out, units, snap, _ = capture
        o_file = [f for f in sorted(os.listdir(out))
                  if f.startswith("extractPlayActor") and
                  f.endswith(".O.reuse")][0]
        counts = mentions_per_page(os.path.join(out, o_file))
        assert len(counts) == len(snap)
        assert counts[0] == 2  # two starred-as facts on u1
        assert counts[2] == 0  # the empty page
