"""repro.reuse.attribution — the shared per-page attribution helper.

Regression pins for the PR that factored the oracle's page-attribution
loop out of ``check/oracle.py``: the helper must (a) reproduce the old
inline oracle logic exactly, (b) reproduce a NoReuse run exactly when
collapsed in canonical order, and (c) agree with the per-page rows the
reuse engine collects during a *recycled* run — the property serve's
delta-apply stands on.
"""

from __future__ import annotations

import tempfile

import pytest

from repro.check.oracle import build_reference
from repro.core.runner import canonical_results, make_system
from repro.corpus import dblife_corpus
from repro.extractors import make_task
from repro.plan import compile_program
from repro.reuse.attribution import (
    attributed_pages,
    canonicalize,
    collapse_page_rows,
    extract_page_rows,
    tuple_attribution,
)
from repro.reuse.engine import materialize_rows
from repro.timing import Timer, Timings


@pytest.fixture(scope="module")
def task():
    return make_task("talk", work_scale=0)


@pytest.fixture(scope="module")
def snapshots():
    return list(dblife_corpus(n_pages=10, seed=11,
                              p_unchanged=0.6).snapshots(3))


@pytest.fixture(scope="module")
def plan(task):
    return compile_program(task.program, task.registry)


def _legacy_oracle_attribution(plan, snapshot):
    """The pre-refactor inline loop from check/oracle.py, verbatim."""
    from repro.core.noreuse import run_page_plain

    timer = Timer(Timings())
    attr = {}
    for page in snapshot.canonical_pages():
        page_rows = run_page_plain(plan, page, timer)
        for rel, rows in page_rows.items():
            rel_attr = attr.setdefault(rel, {})
            for tup in materialize_rows(rows, page.text):
                rel_attr.setdefault(tup, [])
                if page.did not in rel_attr[tup]:
                    rel_attr[tup].append(page.did)
    return {rel: {tup: tuple(dids) for tup, dids in tuples.items()}
            for rel, tuples in attr.items()}


class TestAgainstLegacyOracle:
    def test_attribution_identical_to_old_inline_logic(
            self, plan, snapshots):
        for snapshot in snapshots:
            legacy = _legacy_oracle_attribution(plan, snapshot)
            page_rows = extract_page_rows(plan,
                                          snapshot.canonical_pages())
            fresh = tuple_attribution(
                page_rows,
                order=[p.did for p in snapshot.canonical_pages()])
            assert fresh == legacy

    def test_build_reference_still_attributes_identically(
            self, task, snapshots):
        reference = build_reference(task, snapshots)
        for i, snapshot in enumerate(snapshots):
            assert reference.attribution[i] == \
                _legacy_oracle_attribution(
                    compile_program(task.program, task.registry),
                    snapshot)
            assert reference.results[i] == {
                rel: frozenset(tuples)
                for rel, tuples in reference.attribution[i].items()}


class TestAgainstNoReuse:
    def test_canonical_collapse_equals_noreuse_run(self, task, plan,
                                                   snapshots):
        with tempfile.TemporaryDirectory() as workdir:
            system = make_system("noreuse", task, workdir)
            for snapshot in snapshots:
                result = system.process(snapshot)
                page_rows = extract_page_rows(
                    plan, snapshot.canonical_pages())
                collapsed = collapse_page_rows(
                    page_rows,
                    order=[p.did for p in snapshot.canonical_pages()])
                # Exact list equality: same rows, same emission order,
                # duplicates included.
                assert collapsed == {
                    rel: rows for rel, rows in result.results.items()}


class TestAgainstRecycledRun:
    """Serve's foundation: engine per-page rows == oracle attribution."""

    def test_engine_page_rows_match_from_scratch(self, task, plan,
                                                 snapshots):
        with tempfile.TemporaryDirectory() as workdir:
            system = make_system("delex", task, workdir,
                                 collect_page_rows=True)
            prev = None
            for snapshot in snapshots:
                result = system.process(snapshot, prev)
                engine_rows = system.last_page_rows
                assert engine_rows is not None
                scratch = extract_page_rows(
                    plan, snapshot.canonical_pages())
                # Same pages, same per-page canonical tuples — even
                # though the engine recycled most of the work.
                assert set(engine_rows) == set(scratch)
                assert canonicalize(engine_rows) == \
                    canonicalize(scratch)
                assert tuple_attribution(engine_rows) == \
                    tuple_attribution(scratch)
                # Collapsing the engine's split reproduces its own
                # merged results exactly.
                order = [p.did for p in snapshot.canonical_pages()]
                assert collapse_page_rows(engine_rows, order) == {
                    rel: rows for rel, rows in result.results.items()}
                prev = snapshot

    def test_page_rows_backend_independent(self, task, snapshots):
        collected = {}
        for jobs, backend in ((1, "serial"), (2, "thread")):
            with tempfile.TemporaryDirectory() as workdir:
                system = make_system("delex", task, workdir, jobs=jobs,
                                     backend=backend,
                                     collect_page_rows=True)
                prev = None
                for snapshot in snapshots:
                    system.process(snapshot, prev)
                    prev = snapshot
                collected[(jobs, backend)] = system.last_page_rows
        assert collected[(1, "serial")] == collected[(2, "thread")]


class TestHelpers:
    def test_attributed_pages_unknown_tuple(self):
        rel_attr = {("a",): ("p1", "p2")}
        assert attributed_pages([("a",)], rel_attr) == ("p1", "p2")
        assert attributed_pages([("zz",)], rel_attr) == ("?",)
        assert attributed_pages([("a",), ("zz",)], rel_attr) == \
            ("?", "p1", "p2")

    def test_tuple_attribution_orders_pages_deterministically(self):
        page_rows = {
            "b": {"rel": [("t",)]},
            "a": {"rel": [("t",), ("u",)]},
        }
        attr = tuple_attribution(page_rows)
        assert attr == {"rel": {("t",): ("a", "b"), ("u",): ("a",)}}
        attr_rev = tuple_attribution(page_rows, order=["b", "a"])
        assert attr_rev["rel"][("t",)] == ("b", "a")
