"""The execution runtime: scheduler, executors, capture merge, parity.

The runtime's contract is that backend and worker count are pure
performance knobs: for any executor, every system must produce the
same canonical results AND byte-identical reuse files as a serial run
— including when large pages are split into sub-page work items.
"""

from __future__ import annotations

import hashlib
import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import dblife_corpus, wikipedia_corpus
from repro.core.noreuse import scan_frontier
from repro.core.runner import (
    canonical_results,
    make_system,
    resolve_executor,
    task_cost_hint,
    verify_serial_parallel,
)
from repro.extractors import make_task
from repro.plan.compile import compile_program
from repro.reuse.files import ReuseFileWriter, encode_fields
from repro.runtime import (
    AUTO_PROCESS_WORK_FACTOR,
    BufferedCaptureSink,
    DirectCaptureSink,
    PageBatch,
    PageScheduler,
    ProcessPoolExecutor,
    RuntimeMetrics,
    SerialExecutor,
    SplitConfig,
    ThreadPoolExecutor,
    build_arena,
    build_metrics,
    choose_backend,
    make_executor,
    merge_batch_lists,
    pack_lpt,
    part_extensions,
    plan_parts,
    replay_captures,
)
from repro.text.document import Page
from repro.text.span import Span


def _pages(sizes):
    return [Page.from_url(f"http://site/{i:03d}", "x" * size)
            for i, size in enumerate(sizes)]


# ---------------------------------------------------------------------------
# PageScheduler


class TestPageScheduler:
    def test_empty_input(self):
        assert PageScheduler().plan([], 4) == []

    def test_every_page_exactly_once(self):
        pages = _pages([10, 0, 500, 30, 30, 900, 1, 1, 1, 250])
        batches = PageScheduler().plan(pages, 3)
        flat = [p for b in batches for p in b]
        assert sorted(p.did for p in flat) == sorted(p.did for p in pages)
        assert [b.index for b in batches] == list(range(len(batches)))
        assert all(len(b) > 0 for b in batches)

    def test_largest_page_never_lands_last(self):
        # LPT places the heaviest page first, so it can never end up
        # alone at the tail of an otherwise-full schedule (the old
        # contiguous splitter could, serializing the whole run on it).
        pages = _pages([5000, 4000, 3000, 2000, 1000, 1000])
        batches = PageScheduler(batches_per_job=1).plan(pages, 2)
        total = sum(len(p.text) for p in pages)
        assert len(batches) == 2
        # The 5000-char page is in the first batch...
        assert any(len(p.text) == 5000 for p in batches[0])
        # ...and the makespan beats the contiguous split's 9000.
        assert max(b.chars for b in batches) <= total // 2

    def test_pack_lpt_covers_and_balances(self):
        bins = pack_lpt([5000, 4000, 3000, 2000, 1000, 1000], 2)
        assert sorted(i for b in bins for i in b) == list(range(6))
        loads = [sum([5000, 4000, 3000, 2000, 1000, 1000][i]
                     for i in b) for b in bins]
        assert max(loads) == 8000

    def test_batch_count_capped_by_pages(self):
        pages = _pages([5, 5, 5])
        batches = PageScheduler().plan(pages, 8)
        assert len(batches) == 3  # never more batches than pages

    def test_single_job_oversubscribes_mildly(self):
        pages = _pages([10] * 40)
        batches = PageScheduler(batches_per_job=4).plan(pages, 1)
        assert len(batches) == 4

    def test_size_balance_on_uniform_pages(self):
        pages = _pages([100] * 64)
        batches = PageScheduler(batches_per_job=1).plan(pages, 4)
        sizes = [b.chars for b in batches]
        assert len(batches) == 4
        assert max(sizes) <= 2 * min(sizes)

    def test_size_balance_with_skew(self):
        # One giant page must not drag its neighbours into one batch.
        pages = _pages([10, 10, 10_000, 10, 10, 10, 10, 10])
        batches = PageScheduler(batches_per_job=1).plan(pages, 4)
        giant = [b for b in batches if any(len(p.text) == 10_000
                                           for p in b)]
        assert len(giant) == 1
        assert len(giant[0]) <= 3

    def test_all_empty_pages_still_partition(self):
        pages = _pages([0] * 9)
        batches = PageScheduler(batches_per_job=1).plan(pages, 3)
        flat = [p for b in batches for p in b]
        assert sorted(p.did for p in flat) == sorted(p.did for p in pages)
        assert len(batches) == 3

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            PageScheduler(batches_per_job=0)
        with pytest.raises(ValueError):
            PageScheduler().plan(_pages([1]), 0)

    def test_merge_batch_lists(self):
        assert merge_batch_lists([[1, 2], [], [3]]) == [1, 2, 3]


# ---------------------------------------------------------------------------
# Executor backends


def _square_worker(state, item):
    return state * item * item


class TestExecutors:
    @pytest.mark.parametrize("executor", [
        SerialExecutor(),
        ThreadPoolExecutor(jobs=3),
        ProcessPoolExecutor(jobs=3),
    ], ids=["serial", "thread", "process"])
    def test_map_batches_order_and_values(self, executor):
        timed = executor.map_batches(_square_worker, 2, list(range(10)))
        assert [v for _, v in timed] == [2 * i * i for i in range(10)]
        assert all(s >= 0.0 for s, _ in timed)

    @pytest.mark.parametrize("executor", [
        SerialExecutor(),
        ThreadPoolExecutor(jobs=2),
        ProcessPoolExecutor(jobs=2),
    ], ids=["serial", "thread", "process"])
    def test_empty_items(self, executor):
        assert executor.map_batches(_square_worker, 1, []) == []

    def test_describe(self):
        assert SerialExecutor().describe() == "serial(jobs=1)"
        assert ThreadPoolExecutor(jobs=4).describe() == "thread(jobs=4)"

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            ThreadPoolExecutor(jobs=0)
        with pytest.raises(ValueError):
            ProcessPoolExecutor(jobs=0)


class TestAutoChooser:
    def test_serial_when_single_job(self):
        assert choose_backend(1, cost_hint=1000) == "serial"
        assert isinstance(make_executor("auto", jobs=1), SerialExecutor)

    def test_threads_for_cheap_blackboxes(self):
        assert choose_backend(4, cost_hint=0, cpu_count=4) == "thread"
        ex = make_executor("auto", jobs=4, cost_hint=0, cpu_count=4)
        assert isinstance(ex, ThreadPoolExecutor)

    def test_processes_for_expensive_blackboxes(self):
        hint = AUTO_PROCESS_WORK_FACTOR
        assert choose_backend(4, cost_hint=hint, cpu_count=4) == "process"
        ex = make_executor("auto", jobs=4, cost_hint=hint, cpu_count=4)
        assert isinstance(ex, ProcessPoolExecutor)

    def test_serial_on_single_core_machine(self):
        # Regression: the chooser used to pick the process backend on
        # a 1-CPU machine, where fork + pickle overhead made "parallel"
        # runs strictly slower than serial.
        hint = AUTO_PROCESS_WORK_FACTOR
        assert choose_backend(4, cost_hint=hint, cpu_count=1) == "serial"
        assert choose_backend(4, cost_hint=0, cpu_count=1) == "serial"
        ex = make_executor("auto", jobs=4, cost_hint=hint, cpu_count=1)
        assert isinstance(ex, SerialExecutor)

    def test_serial_on_single_core_by_default(self, monkeypatch):
        # Same regression via the default os.cpu_count() probe.
        import repro.runtime.executor as executor_module
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 1)
        assert choose_backend(4, cost_hint=64) == "serial"
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: None)
        assert choose_backend(4, cost_hint=64) == "serial"

    def test_explicit_backend_wins(self):
        ex = make_executor("process", jobs=2, cost_hint=0, cpu_count=1)
        assert isinstance(ex, ProcessPoolExecutor)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            make_executor("gpu", jobs=2)

    def test_task_cost_hint_feeds_chooser(self):
        heavy = make_task("chair", work_scale=1.0)
        light = make_task("chair", work_scale=0)
        assert task_cost_hint(heavy) > task_cost_hint(light) == 0.0
        assert resolve_executor(light, jobs=1) is None
        assert isinstance(resolve_executor(light, jobs=2, cpu_count=4),
                          ThreadPoolExecutor)


# ---------------------------------------------------------------------------
# Work-stealing run_work


def _sleepy_worker(state, item):
    kind, value = item
    if kind == "slow":
        time.sleep(0.2)
    return state * value


class TestRunWork:
    @pytest.mark.parametrize("executor", [
        SerialExecutor(),
        ThreadPoolExecutor(jobs=3),
        ProcessPoolExecutor(jobs=3),
    ], ids=["serial", "thread", "process"])
    def test_values_in_submission_order(self, executor):
        items = [("fast", i) for i in range(10)]
        result = executor.run_work(_sleepy_worker, 3, items,
                                   costs=[float(i + 1) for i in range(10)])
        assert [v for _, v in result.timed] == [3 * i for i in range(10)]
        assert all(s >= 0.0 for s, _ in result.timed)
        assert result.steals >= 0
        assert all(b >= 0.0 for b in result.slot_busy)

    def test_idle_worker_steals_from_stuck_one(self):
        # Declared costs put a slow item and two fast ones on slot 0;
        # slot 1 drains its own queue in microseconds and must steal
        # slot 0's remaining items while the slow one blocks it.
        items = [("slow", 0), ("fast", 1), ("fast", 2), ("fast", 3),
                 ("fast", 4), ("fast", 5)]
        costs = [5.0, 5.0, 1.0, 1.0, 1.0, 1.0]
        executor = ThreadPoolExecutor(jobs=2)
        result = executor.run_work(_sleepy_worker, 1, items, costs=costs)
        assert [v for _, v in result.timed] == [0, 1, 2, 3, 4, 5]
        assert result.steals >= 1
        assert len(result.slot_busy) == 2

    def test_empty_items(self):
        result = ThreadPoolExecutor(jobs=2).run_work(
            _sleepy_worker, 1, [], costs=[])
        assert result.timed == []
        assert result.steals == 0


# ---------------------------------------------------------------------------
# Shared-memory text arena


class TestTextArena:
    TEXTS = {"c:d01": "alpha beta", "c:d02": "", "q:d01": "καλημέρα κόσμε"}

    def test_local_arena_for_threads(self):
        arena = build_arena(dict(self.TEXTS), "thread")
        try:
            assert not arena.shared
            for key, text in self.TEXTS.items():
                assert arena.handle.text(key) == text
        finally:
            arena.close()

    def test_shared_arena_roundtrips_through_pickle(self):
        import pickle

        from repro.runtime import shm_available

        if not shm_available():
            pytest.skip("no shared memory on this platform")
        arena = build_arena(dict(self.TEXTS), "process")
        try:
            assert arena.shared
            handle = pickle.loads(pickle.dumps(arena.handle))
            for key, text in self.TEXTS.items():
                assert handle.text(key) == text
                assert arena.handle.text(key) == text  # parent side too
        finally:
            arena.close()

    def test_empty_arena(self):
        arena = build_arena({}, "process")
        try:
            with pytest.raises(KeyError):
                arena.handle.text("missing")
        finally:
            arena.close()


# ---------------------------------------------------------------------------
# Capture buffers and the byte-identical merge


def _emit(sink, uid_rows):
    """Drive a sink through a fixed page/record sequence."""
    for did, per_unit in uid_rows:
        sink.begin_page(did)
        for uid, inputs in per_unit.items():
            for (s, e, c, outs) in inputs:
                tid = sink.append_input(uid, did, s, e, c)
                for fields in outs:
                    sink.append_output(uid, did, tid, fields)


def _capture_script():
    f1 = encode_fields({"x": Span("d01", 2, 5)})
    f2 = encode_fields({"x": Span("d01", 7, 9), "n": 3})
    return [
        ("d01", {"u1": [(0, 10, "", [f1, f2]), (10, 30, "k", [])],
                 "u2": [(0, 30, "", [f1])]}),
        ("d02", {"u1": [], "u2": [(5, 9, "", [f2])]}),
        ("d03", {"u1": [(1, 4, "", [f1])], "u2": []}),
    ]


def _write_files(directory, mode):
    os.makedirs(directory, exist_ok=True)
    writers = {uid: (ReuseFileWriter(os.path.join(directory, f"{uid}.I")),
                     ReuseFileWriter(os.path.join(directory, f"{uid}.O")))
               for uid in ("u1", "u2")}
    script = _capture_script()
    if mode == "direct":
        _emit(DirectCaptureSink(writers), script)
    else:
        # Two "workers", pages split mid-sequence, merged by replay.
        first, second = (BufferedCaptureSink(["u1", "u2"]) for _ in "ab")
        _emit(first, script[:2])
        _emit(second, script[2:])
        replay_captures(first.pages + second.pages, writers)
    for wi, wo in writers.values():
        wi.close()
        wo.close()
    return {name: open(os.path.join(directory, name), "rb").read()
            for name in sorted(os.listdir(directory))}


class TestCaptureMerge:
    def test_replay_is_byte_identical_to_direct(self, tmp_path):
        direct = _write_files(str(tmp_path / "direct"), "direct")
        merged = _write_files(str(tmp_path / "buffered"), "buffered")
        assert direct == merged
        assert any(direct.values())  # files actually contain records

    def test_buffered_requires_open_page(self):
        sink = BufferedCaptureSink(["u1"])
        with pytest.raises(ValueError):
            sink.append_input("u1", "d01", 0, 1)
        sink.begin_page("d01")
        with pytest.raises(ValueError):
            sink.append_input("u1", "d99", 0, 1)

    def test_local_tids_are_per_page(self):
        sink = BufferedCaptureSink(["u1"])
        sink.begin_page("d01")
        assert sink.append_input("u1", "d01", 0, 1) == 0
        assert sink.append_input("u1", "d01", 1, 2) == 1
        sink.begin_page("d02")
        assert sink.append_input("u1", "d02", 0, 1) == 0

    def test_empty_pages_allocate_no_buffers(self):
        # Regression: begin_page used to allocate one list per uid per
        # page; on mostly-recycled snapshots those empty lists (and
        # copying them through replay) dominated merge cost.
        sink = BufferedCaptureSink(["u1", "u2", "u3"])
        for i in range(5):
            sink.begin_page(f"d{i:02d}")
        assert all(p.inputs == {} and p.outputs == {} for p in sink.pages)

    def test_replay_reports_skipped_empty_groups(self, tmp_path):
        writers = {
            uid: (ReuseFileWriter(str(tmp_path / f"{uid}.I")),
                  ReuseFileWriter(str(tmp_path / f"{uid}.O")))
            for uid in ("u1", "u2")}
        sink = BufferedCaptureSink(["u1", "u2"])
        _emit(sink, _capture_script())
        stats = replay_captures(sink.pages, writers)
        for wi, wo in writers.values():
            wi.close()
            wo.close()
        assert stats.pages == 3
        # d02/u1 and d03/u2 recorded nothing: their record loops are
        # skipped but the @page headers still land in the files.
        assert stats.skipped == 2
        assert stats.records > 0


# ---------------------------------------------------------------------------
# Runtime metrics


class TestMetrics:
    def test_build_and_aggregate(self):
        pages = _pages([100, 100, 100, 100])
        batches = PageScheduler(batches_per_job=1).plan(pages, 2)
        metrics = build_metrics("thread", 2, wall_seconds=1.0,
                                batches=batches, batch_seconds=[0.6, 0.8])
        assert isinstance(metrics, RuntimeMetrics)
        assert metrics.pages == 4
        assert metrics.busy_seconds == pytest.approx(1.4)
        assert metrics.pages_per_second == pytest.approx(4.0)
        assert 0.0 < metrics.worker_utilization <= 1.0
        assert "thread" in metrics.describe()

    def test_length_mismatch_rejected(self):
        pages = _pages([10, 10])
        batches = PageScheduler(batches_per_job=1).plan(pages, 2)
        with pytest.raises(ValueError):
            build_metrics("serial", 1, 0.5, batches, [0.1])

    def test_systems_attach_metrics(self, tmp_path):
        task = make_task("play", work_scale=0)
        snaps = list(wikipedia_corpus(n_pages=8, seed=3).snapshots(2))
        system = make_system("noreuse", task, str(tmp_path), jobs=2,
                             backend="thread")
        result = system.process(snaps[0])
        runtime = result.timings.runtime
        assert runtime is not None
        assert runtime.backend == "thread" and runtime.jobs == 2
        assert runtime.pages == len(snaps[0])


# ---------------------------------------------------------------------------
# Split-correct sub-page work items


def _talk_frontier():
    task = make_task("talk", work_scale=0)
    plan = compile_program(task.program, task.registry)
    return scan_frontier(plan)[0]


_LINE_POOL = None


def _line_pool():
    """Lines from real dblife pages — text the talk extractor bites on."""
    global _LINE_POOL
    if _LINE_POOL is None:
        snaps = list(dblife_corpus(n_pages=6, seed=13).snapshots(1))
        lines = []
        for page in snaps[0]:
            lines.extend(line for line in page.text.split("\n") if line)
        _LINE_POOL = lines[:200]
    return _LINE_POOL


class TestSplitPlanning:
    @given(length=st.integers(min_value=0, max_value=200_000),
           jobs=st.integers(min_value=1, max_value=16),
           alpha=st.integers(min_value=0, max_value=20_000),
           beta=st.integers(min_value=0, max_value=256))
    @settings(max_examples=100, deadline=None)
    def test_parts_partition_the_page(self, length, jobs, alpha, beta):
        config = SplitConfig(min_part_chars=64)
        parts = plan_parts("d", length, jobs, config, alpha, beta)
        if not parts:
            return
        assert len(parts) >= 2
        assert parts[0].lo == 0 and parts[-1].hi == length
        for prev, part in zip(parts, parts[1:]):
            assert prev.hi == part.lo  # contiguous, no gap, no overlap
        for part in parts:
            assert part.lo < part.hi
            lo, hi = part.chunk(alpha, beta)
            # The chunk sees the owned range plus full margins (or the
            # true page boundary, which the serial run clips too).
            assert lo == max(0, part.lo - beta)
            assert hi == min(length, part.hi + alpha + beta)

    def test_no_split_for_single_job_or_tiny_page(self):
        config = SplitConfig()
        assert plan_parts("d", 100_000, 1, config, 10, 1) == []
        assert plan_parts("d", 100, 8, config, 10, 1) == []
        assert not config.should_split(100, 1000, 4)
        assert not SplitConfig(enabled=False).should_split(
            10_000, 10_000, 4)


class TestSplitExtraction:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_split_points_never_cut_extractions(self, data):
        node = _talk_frontier()
        pool = _line_pool()
        picks = data.draw(st.lists(
            st.integers(min_value=0, max_value=len(pool) - 1),
            min_size=30, max_size=90))
        jobs = data.draw(st.integers(min_value=2, max_value=4))
        text = "\n".join(pool[i] for i in picks)
        extractor = node.extractor
        config = SplitConfig(min_part_chars=64)
        parts = plan_parts("d", len(text), jobs, config,
                           extractor.scope, extractor.context)
        if not parts:
            return
        serial = [(e.extent(), node.extension_fields(
                       e, Span("d", 0, len(text))))
                  for e in extractor.extract(text)]
        # Every serial extraction is owned by exactly one part: no
        # split point lands inside an extraction region.
        for extent, _ in serial:
            assert extent is not None
            owners = [p for p in parts if p.lo <= extent[0] < p.hi]
            assert len(owners) == 1

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_split_merge_is_identical_to_serial(self, data):
        node = _talk_frontier()
        pool = _line_pool()
        picks = data.draw(st.lists(
            st.integers(min_value=0, max_value=len(pool) - 1),
            min_size=30, max_size=90))
        jobs = data.draw(st.integers(min_value=2, max_value=4))
        text = "\n".join(pool[i] for i in picks)
        extractor = node.extractor
        parts = plan_parts("d", len(text), jobs,
                           SplitConfig(min_part_chars=64),
                           extractor.scope, extractor.context)
        if not parts:
            return
        serial = [node.extension_fields(e, Span("d", 0, len(text)))
                  for e in extractor.extract(text)]
        merged = [ext for part in parts
                  for ext in part_extensions(node, text, part)]
        assert merged == serial


class TestForcedSplitParity:
    """End-to-end byte parity with splitting forced on every page."""

    FORCE = SplitConfig(min_part_chars=64, threshold_factor=0.0)

    @pytest.mark.parametrize("system_name",
                             ["noreuse", "shortcut", "cyclex", "delex"])
    def test_thread_jobs2_with_forced_splits(self, system_name, tmp_path):
        task = make_task("talk", work_scale=0)
        snaps = list(dblife_corpus(n_pages=8, seed=3).snapshots(2))
        serial_dir = str(tmp_path / "serial")
        parallel_dir = str(tmp_path / "parallel")
        serial = _run_system(system_name, task, snaps, serial_dir)
        parallel_sys = make_system(system_name, task, parallel_dir,
                                   executor=ThreadPoolExecutor(jobs=2),
                                   split=self.FORCE)
        outputs, prev = [], None
        runtime = None
        for snap in snaps:
            result = parallel_sys.process(snap, prev)
            outputs.append(canonical_results(result))
            runtime = runtime or result.timings.runtime
            prev = snap
        assert serial == outputs
        assert _tree_digests(serial_dir) == _tree_digests(parallel_dir)
        # Splitting actually fired (bootstrap runs everything fresh).
        assert runtime is not None
        assert runtime.split_pages > 0
        assert runtime.split_parts >= 2 * runtime.split_pages
        assert runtime.pages == len(snaps[0])


# ---------------------------------------------------------------------------
# Serial <-> parallel parity (Theorem 1, runtime edition)


def _tree_digests(directory):
    out = {}
    for root, _, names in os.walk(directory):
        for name in names:
            path = os.path.join(root, name)
            rel = os.path.relpath(path, directory)
            with open(path, "rb") as f:
                out[rel] = hashlib.sha256(f.read()).hexdigest()
    return out


def _run_system(name, task, snaps, workdir, executor=None):
    system = make_system(name, task, workdir, executor=executor)
    outputs = []
    prev = None
    for snap in snaps:
        outputs.append(canonical_results(system.process(snap, prev)))
        prev = snap
    return outputs


class TestSerialParallelParity:
    @pytest.mark.parametrize("system_name",
                             ["noreuse", "shortcut", "cyclex", "delex"])
    def test_thread_jobs2_results_and_files(self, system_name, tmp_path,
                                            dblife_snapshots):
        task = make_task("chair", work_scale=0)
        serial_dir = str(tmp_path / "serial")
        parallel_dir = str(tmp_path / "parallel")
        serial = _run_system(system_name, task, dblife_snapshots,
                             serial_dir)
        parallel = _run_system(system_name, task, dblife_snapshots,
                               parallel_dir,
                               executor=ThreadPoolExecutor(jobs=2))
        assert serial == parallel
        assert _tree_digests(serial_dir) == _tree_digests(parallel_dir)

    def test_delex_process_jobs4_property(self, tmp_path):
        """Serial and 4-process Delex agree snapshot by snapshot on a
        3-snapshot evolving corpus — results and reuse-file bytes."""
        task = make_task("play", work_scale=0)
        snaps = list(wikipedia_corpus(n_pages=12, seed=11).snapshots(3))
        serial_dir = str(tmp_path / "serial")
        parallel_dir = str(tmp_path / "parallel")
        serial = _run_system("delex", task, snaps, serial_dir)
        parallel = _run_system("delex", task, snaps, parallel_dir,
                               executor=ProcessPoolExecutor(jobs=4))
        for i, (s, p) in enumerate(zip(serial, parallel)):
            assert s == p, f"snapshot {i} diverged"
        assert _tree_digests(serial_dir) == _tree_digests(parallel_dir)

    def test_verify_serial_parallel_helper(self, dblife_snapshots):
        task = make_task("chair", work_scale=0)
        problems = verify_serial_parallel(task, dblife_snapshots[:3],
                                          systems=("noreuse", "delex"),
                                          jobs=2)
        assert problems == []

    def test_scheduler_batch_shapes_do_not_change_results(self, tmp_path):
        """Pathological batching (1 page per batch) is still exact."""
        task = make_task("play", work_scale=0)
        snaps = list(wikipedia_corpus(n_pages=6, seed=5).snapshots(2))
        a = _run_system("delex", task, snaps, str(tmp_path / "a"))
        b_sys = make_system("delex", task, str(tmp_path / "b"),
                            executor=ThreadPoolExecutor(jobs=2))
        b_sys.scheduler = PageScheduler(batches_per_job=64)
        outputs = []
        prev = None
        for snap in snaps:
            outputs.append(canonical_results(b_sys.process(snap, prev)))
            prev = snap
        assert a == outputs


def test_page_batch_helpers():
    pages = _pages([3, 4])
    batch = PageBatch(index=0, pages=tuple(pages))
    assert len(batch) == 2
    assert list(batch) == pages
    assert batch.chars == 7
