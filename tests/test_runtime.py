"""The execution runtime: scheduler, executors, capture merge, parity.

The runtime's contract is that backend and worker count are pure
performance knobs: for any executor, every system must produce the
same canonical results AND byte-identical reuse files as a serial run.
"""

from __future__ import annotations

import hashlib
import os

import pytest

from repro.corpus import dblife_corpus, wikipedia_corpus
from repro.core.runner import (
    canonical_results,
    make_system,
    resolve_executor,
    task_cost_hint,
    verify_serial_parallel,
)
from repro.extractors import make_task
from repro.reuse.files import ReuseFileWriter, encode_fields
from repro.runtime import (
    AUTO_PROCESS_WORK_FACTOR,
    BufferedCaptureSink,
    DirectCaptureSink,
    PageBatch,
    PageScheduler,
    ProcessPoolExecutor,
    RuntimeMetrics,
    SerialExecutor,
    ThreadPoolExecutor,
    build_metrics,
    choose_backend,
    make_executor,
    merge_batch_lists,
    replay_captures,
)
from repro.text.document import Page
from repro.text.span import Span


def _pages(sizes):
    return [Page.from_url(f"http://site/{i:03d}", "x" * size)
            for i, size in enumerate(sizes)]


# ---------------------------------------------------------------------------
# PageScheduler


class TestPageScheduler:
    def test_empty_input(self):
        assert PageScheduler().plan([], 4) == []

    def test_every_page_exactly_once_in_order(self):
        pages = _pages([10, 0, 500, 30, 30, 900, 1, 1, 1, 250])
        batches = PageScheduler().plan(pages, 3)
        flat = [p for b in batches for p in b]
        assert flat == pages  # order preserved, full coverage
        assert [b.index for b in batches] == list(range(len(batches)))
        assert all(len(b) > 0 for b in batches)

    def test_batches_are_contiguous_slices(self):
        pages = _pages([100] * 17)
        batches = PageScheduler(batches_per_job=2).plan(pages, 4)
        start = 0
        for batch in batches:
            assert tuple(pages[start:start + len(batch)]) == batch.pages
            start += len(batch)
        assert start == len(pages)

    def test_batch_count_capped_by_pages(self):
        pages = _pages([5, 5, 5])
        batches = PageScheduler().plan(pages, 8)
        assert len(batches) == 3  # never more batches than pages

    def test_single_job_oversubscribes_mildly(self):
        pages = _pages([10] * 40)
        batches = PageScheduler(batches_per_job=4).plan(pages, 1)
        assert len(batches) == 4

    def test_size_balance_on_uniform_pages(self):
        pages = _pages([100] * 64)
        batches = PageScheduler(batches_per_job=1).plan(pages, 4)
        sizes = [b.chars for b in batches]
        assert len(batches) == 4
        assert max(sizes) <= 2 * min(sizes)

    def test_size_balance_with_skew(self):
        # One giant page must not drag its neighbours into one batch.
        pages = _pages([10, 10, 10_000, 10, 10, 10, 10, 10])
        batches = PageScheduler(batches_per_job=1).plan(pages, 4)
        giant = [b for b in batches if any(len(p.text) == 10_000
                                           for p in b)]
        assert len(giant) == 1
        assert len(giant[0]) <= 3

    def test_all_empty_pages_still_partition(self):
        pages = _pages([0] * 9)
        batches = PageScheduler(batches_per_job=1).plan(pages, 3)
        assert [p for b in batches for p in b] == pages
        assert len(batches) == 3

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            PageScheduler(batches_per_job=0)
        with pytest.raises(ValueError):
            PageScheduler().plan(_pages([1]), 0)

    def test_merge_batch_lists(self):
        assert merge_batch_lists([[1, 2], [], [3]]) == [1, 2, 3]


# ---------------------------------------------------------------------------
# Executor backends


def _square_worker(state, item):
    return state * item * item


class TestExecutors:
    @pytest.mark.parametrize("executor", [
        SerialExecutor(),
        ThreadPoolExecutor(jobs=3),
        ProcessPoolExecutor(jobs=3),
    ], ids=["serial", "thread", "process"])
    def test_map_batches_order_and_values(self, executor):
        timed = executor.map_batches(_square_worker, 2, list(range(10)))
        assert [v for _, v in timed] == [2 * i * i for i in range(10)]
        assert all(s >= 0.0 for s, _ in timed)

    @pytest.mark.parametrize("executor", [
        SerialExecutor(),
        ThreadPoolExecutor(jobs=2),
        ProcessPoolExecutor(jobs=2),
    ], ids=["serial", "thread", "process"])
    def test_empty_items(self, executor):
        assert executor.map_batches(_square_worker, 1, []) == []

    def test_describe(self):
        assert SerialExecutor().describe() == "serial(jobs=1)"
        assert ThreadPoolExecutor(jobs=4).describe() == "thread(jobs=4)"

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            ThreadPoolExecutor(jobs=0)
        with pytest.raises(ValueError):
            ProcessPoolExecutor(jobs=0)


class TestAutoChooser:
    def test_serial_when_single_job(self):
        assert choose_backend(1, cost_hint=1000) == "serial"
        assert isinstance(make_executor("auto", jobs=1), SerialExecutor)

    def test_threads_for_cheap_blackboxes(self):
        assert choose_backend(4, cost_hint=0) == "thread"
        ex = make_executor("auto", jobs=4, cost_hint=0)
        assert isinstance(ex, ThreadPoolExecutor)

    def test_processes_for_expensive_blackboxes(self):
        hint = AUTO_PROCESS_WORK_FACTOR
        assert choose_backend(4, cost_hint=hint) == "process"
        ex = make_executor("auto", jobs=4, cost_hint=hint)
        assert isinstance(ex, ProcessPoolExecutor)

    def test_explicit_backend_wins(self):
        ex = make_executor("process", jobs=2, cost_hint=0)
        assert isinstance(ex, ProcessPoolExecutor)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            make_executor("gpu", jobs=2)

    def test_task_cost_hint_feeds_chooser(self):
        heavy = make_task("chair", work_scale=1.0)
        light = make_task("chair", work_scale=0)
        assert task_cost_hint(heavy) > task_cost_hint(light) == 0.0
        assert resolve_executor(light, jobs=1) is None
        assert isinstance(resolve_executor(light, jobs=2),
                          ThreadPoolExecutor)


# ---------------------------------------------------------------------------
# Capture buffers and the byte-identical merge


def _emit(sink, uid_rows):
    """Drive a sink through a fixed page/record sequence."""
    for did, per_unit in uid_rows:
        sink.begin_page(did)
        for uid, inputs in per_unit.items():
            for (s, e, c, outs) in inputs:
                tid = sink.append_input(uid, did, s, e, c)
                for fields in outs:
                    sink.append_output(uid, did, tid, fields)


def _capture_script():
    f1 = encode_fields({"x": Span("d01", 2, 5)})
    f2 = encode_fields({"x": Span("d01", 7, 9), "n": 3})
    return [
        ("d01", {"u1": [(0, 10, "", [f1, f2]), (10, 30, "k", [])],
                 "u2": [(0, 30, "", [f1])]}),
        ("d02", {"u1": [], "u2": [(5, 9, "", [f2])]}),
        ("d03", {"u1": [(1, 4, "", [f1])], "u2": []}),
    ]


def _write_files(directory, mode):
    os.makedirs(directory, exist_ok=True)
    writers = {uid: (ReuseFileWriter(os.path.join(directory, f"{uid}.I")),
                     ReuseFileWriter(os.path.join(directory, f"{uid}.O")))
               for uid in ("u1", "u2")}
    script = _capture_script()
    if mode == "direct":
        _emit(DirectCaptureSink(writers), script)
    else:
        # Two "workers", pages split mid-sequence, merged by replay.
        first, second = (BufferedCaptureSink(["u1", "u2"]) for _ in "ab")
        _emit(first, script[:2])
        _emit(second, script[2:])
        replay_captures(first.pages + second.pages, writers)
    for wi, wo in writers.values():
        wi.close()
        wo.close()
    return {name: open(os.path.join(directory, name), "rb").read()
            for name in sorted(os.listdir(directory))}


class TestCaptureMerge:
    def test_replay_is_byte_identical_to_direct(self, tmp_path):
        direct = _write_files(str(tmp_path / "direct"), "direct")
        merged = _write_files(str(tmp_path / "buffered"), "buffered")
        assert direct == merged
        assert any(direct.values())  # files actually contain records

    def test_buffered_requires_open_page(self):
        sink = BufferedCaptureSink(["u1"])
        with pytest.raises(ValueError):
            sink.append_input("u1", "d01", 0, 1)
        sink.begin_page("d01")
        with pytest.raises(ValueError):
            sink.append_input("u1", "d99", 0, 1)

    def test_local_tids_are_per_page(self):
        sink = BufferedCaptureSink(["u1"])
        sink.begin_page("d01")
        assert sink.append_input("u1", "d01", 0, 1) == 0
        assert sink.append_input("u1", "d01", 1, 2) == 1
        sink.begin_page("d02")
        assert sink.append_input("u1", "d02", 0, 1) == 0


# ---------------------------------------------------------------------------
# Runtime metrics


class TestMetrics:
    def test_build_and_aggregate(self):
        pages = _pages([100, 100, 100, 100])
        batches = PageScheduler(batches_per_job=1).plan(pages, 2)
        metrics = build_metrics("thread", 2, wall_seconds=1.0,
                                batches=batches, batch_seconds=[0.6, 0.8])
        assert isinstance(metrics, RuntimeMetrics)
        assert metrics.pages == 4
        assert metrics.busy_seconds == pytest.approx(1.4)
        assert metrics.pages_per_second == pytest.approx(4.0)
        assert 0.0 < metrics.worker_utilization <= 1.0
        assert "thread" in metrics.describe()

    def test_length_mismatch_rejected(self):
        pages = _pages([10, 10])
        batches = PageScheduler(batches_per_job=1).plan(pages, 2)
        with pytest.raises(ValueError):
            build_metrics("serial", 1, 0.5, batches, [0.1])

    def test_systems_attach_metrics(self, tmp_path):
        task = make_task("play", work_scale=0)
        snaps = list(wikipedia_corpus(n_pages=8, seed=3).snapshots(2))
        system = make_system("noreuse", task, str(tmp_path), jobs=2,
                             backend="thread")
        result = system.process(snaps[0])
        runtime = result.timings.runtime
        assert runtime is not None
        assert runtime.backend == "thread" and runtime.jobs == 2
        assert runtime.pages == len(snaps[0])


# ---------------------------------------------------------------------------
# Serial <-> parallel parity (Theorem 1, runtime edition)


def _tree_digests(directory):
    out = {}
    for root, _, names in os.walk(directory):
        for name in names:
            path = os.path.join(root, name)
            rel = os.path.relpath(path, directory)
            with open(path, "rb") as f:
                out[rel] = hashlib.sha256(f.read()).hexdigest()
    return out


def _run_system(name, task, snaps, workdir, executor=None):
    system = make_system(name, task, workdir, executor=executor)
    outputs = []
    prev = None
    for snap in snaps:
        outputs.append(canonical_results(system.process(snap, prev)))
        prev = snap
    return outputs


class TestSerialParallelParity:
    @pytest.mark.parametrize("system_name",
                             ["noreuse", "shortcut", "cyclex", "delex"])
    def test_thread_jobs2_results_and_files(self, system_name, tmp_path,
                                            dblife_snapshots):
        task = make_task("chair", work_scale=0)
        serial_dir = str(tmp_path / "serial")
        parallel_dir = str(tmp_path / "parallel")
        serial = _run_system(system_name, task, dblife_snapshots,
                             serial_dir)
        parallel = _run_system(system_name, task, dblife_snapshots,
                               parallel_dir,
                               executor=ThreadPoolExecutor(jobs=2))
        assert serial == parallel
        assert _tree_digests(serial_dir) == _tree_digests(parallel_dir)

    def test_delex_process_jobs4_property(self, tmp_path):
        """Serial and 4-process Delex agree snapshot by snapshot on a
        3-snapshot evolving corpus — results and reuse-file bytes."""
        task = make_task("play", work_scale=0)
        snaps = list(wikipedia_corpus(n_pages=12, seed=11).snapshots(3))
        serial_dir = str(tmp_path / "serial")
        parallel_dir = str(tmp_path / "parallel")
        serial = _run_system("delex", task, snaps, serial_dir)
        parallel = _run_system("delex", task, snaps, parallel_dir,
                               executor=ProcessPoolExecutor(jobs=4))
        for i, (s, p) in enumerate(zip(serial, parallel)):
            assert s == p, f"snapshot {i} diverged"
        assert _tree_digests(serial_dir) == _tree_digests(parallel_dir)

    def test_verify_serial_parallel_helper(self, dblife_snapshots):
        task = make_task("chair", work_scale=0)
        problems = verify_serial_parallel(task, dblife_snapshots[:3],
                                          systems=("noreuse", "delex"),
                                          jobs=2)
        assert problems == []

    def test_scheduler_batch_shapes_do_not_change_results(self, tmp_path):
        """Pathological batching (1 page per batch) is still exact."""
        task = make_task("play", work_scale=0)
        snaps = list(wikipedia_corpus(n_pages=6, seed=5).snapshots(2))
        a = _run_system("delex", task, snaps, str(tmp_path / "a"))
        b_sys = make_system("delex", task, str(tmp_path / "b"),
                            executor=ThreadPoolExecutor(jobs=2))
        b_sys.scheduler = PageScheduler(batches_per_job=64)
        outputs = []
        prev = None
        for snap in snaps:
            outputs.append(canonical_results(b_sys.process(snap, prev)))
            prev = snap
        assert a == outputs


def test_page_batch_helpers():
    pages = _pages([3, 4])
    batch = PageBatch(index=0, pages=tuple(pages))
    assert len(batch) == 2
    assert list(batch) == pages
    assert batch.chars == 7
