"""Regression tests for the telemetry-path bugs this PR fixes.

Each test here fails on the pre-PR code:

* lag/apply durations came from ``time.time()`` — a wall-clock step
  backwards produced negative lags;
* ``Timings.others`` could go negative under parallel backends (and
  the clamped-away overlap was invisible);
* a snapshot file torn between page records parsed *successfully*
  with fewer pages (the spool race), and ``stop()`` silently
  swallowed a failed thread join;
* derived rates (pages/sec, utilization, memo hit-rate, qps) divided
  by zero on empty/instant runs.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.corpus import dblife_corpus
from repro.corpus.snapshot import (
    read_snapshot,
    snapshot_from_texts,
    write_snapshot,
)
from repro.serve import (
    IngestLoop,
    IngestQueue,
    SpoolWatcher,
    ViewConfig,
    ViewRegistry,
    drop_snapshot,
)
from repro.timing import EXTRACT, MATCH, Timings


@pytest.fixture()
def snapshots():
    return list(dblife_corpus(n_pages=6, seed=2,
                              p_unchanged=0.5).snapshots(3))


def _talk_registry(tmp_path):
    registry = ViewRegistry(str(tmp_path / "views"))
    registry.register(ViewConfig(name="talk", task="talk",
                                 work_scale=0.0))
    return registry


# ---------------------------------------------------------------------------
# Satellite 1: durations must come from the monotonic clock


class TestMonotonicClock:
    def test_lag_survives_wall_clock_jumping_backwards(
            self, tmp_path, snapshots, monkeypatch):
        """An NTP-style backwards step between enqueue and apply used
        to make ``lag_seconds`` negative (it was ``applied_at -
        enqueued_at``, both wall-clock)."""
        registry = _talk_registry(tmp_path)
        queue = IngestQueue()
        loop = IngestLoop(registry, queue)

        # Wall clock runs *backwards* one hour per call; the monotonic
        # clock is untouched.
        ticks = iter(range(0, 10_000))
        base = time.time()
        monkeypatch.setattr(
            time, "time", lambda: base - 3600.0 * next(ticks))

        for snapshot in snapshots:
            assert queue.push(snapshot)
            item = queue.pop()
            assert loop.apply_one(item.snapshot,
                                  enqueued_at=item.enqueued_at,
                                  enqueued_mono=item.enqueued_mono)

        view = registry.get("talk")
        assert len(view.history) == len(snapshots)
        for record in view.history:
            assert record.lag_seconds is not None
            assert record.lag_seconds >= 0.0
            assert record.applied_mono > 0.0
        for entry in loop.recent:
            assert entry["apply_seconds"] >= 0.0
            assert entry["lag_seconds"] is None or (
                entry["lag_seconds"] >= 0.0)

    def test_queue_item_carries_both_clocks(self, snapshots):
        queue = IngestQueue()
        queue.push(snapshots[0])
        item = queue.pop()
        assert item.enqueued_mono <= time.monotonic()
        assert item.enqueued_at  # wall timestamp kept for display

    def test_wall_only_caller_gets_no_lag_not_a_wrong_one(
            self, tmp_path, snapshots):
        registry = _talk_registry(tmp_path)
        loop = IngestLoop(registry, IngestQueue())
        loop.apply_one(snapshots[0], enqueued_at=time.time())
        record = registry.get("talk").history[-1]
        assert record.lag_seconds is None


# ---------------------------------------------------------------------------
# Satellite 2: Others clamp + explicit overlap counter


class TestOthersClamp:
    def test_overlapping_worker_timings_never_go_negative(self):
        """Fabricated parallel shape: two workers each report 0.8s of
        extraction inside a 1.0s wall total. The old ``others``
        arithmetic yielded -0.6."""
        t = Timings(total=1.0)
        t.add(EXTRACT, 0.8)
        t.add(EXTRACT, 0.8)
        assert t.others == 0.0
        assert t.overlap_seconds == pytest.approx(0.6)
        row = t.as_row()
        assert row["others"] == 0.0
        assert all(v >= 0.0 for v in row.values())

    def test_overlap_in_to_dict(self):
        t = Timings(total=1.0)
        t.add(MATCH, 0.9)
        t.add(EXTRACT, 0.9)
        doc = t.to_dict()
        assert doc["overlap_seconds"] == pytest.approx(0.8)
        assert doc["others"] == 0.0

    def test_serial_shape_unchanged(self):
        t = Timings(total=1.0)
        t.add(MATCH, 0.3)
        assert t.others == pytest.approx(0.7)
        assert t.overlap_seconds == 0.0

    def test_no_total_measured(self):
        t = Timings()
        t.add(MATCH, 0.5)
        assert t.others == 0.0
        assert t.overlap_seconds == 0.0  # meaningless without a wall


# ---------------------------------------------------------------------------
# Satellite 3a: the spool race — truncated files must not parse


class TestSpoolTruncation:
    def _snapshot(self, index=1):
        return snapshot_from_texts(index, {
            "u1": "alpha " * 50, "u2": "beta " * 50, "u3": "gamma " * 50})

    def test_truncated_between_records_raises(self, tmp_path):
        """The dangerous torn write: the file ends cleanly on a record
        boundary, so pre-PR it parsed fine — with one page missing."""
        path = str(tmp_path / "snapshot_0001.dat")
        write_snapshot(self._snapshot(), path)
        with open(path, "rb") as f:
            lines = f.read().split(b"\n")
        # Keep header + first two full page records (2 lines each).
        torn = b"\n".join(lines[:5]) + b"\n"
        with open(path, "wb") as f:
            f.write(torn)
        with pytest.raises(ValueError, match="truncated"):
            read_snapshot(path)

    def test_truncated_mid_body_raises(self, tmp_path):
        path = str(tmp_path / "snapshot_0001.dat")
        write_snapshot(self._snapshot(), path)
        size = os.path.getsize(path)
        with open(path, "rb+") as f:
            f.truncate(size - 40)  # chop into the last page body
        with pytest.raises(ValueError, match="truncated"):
            read_snapshot(path)

    def test_watcher_defers_torn_file_then_ingests_completed(
            self, tmp_path):
        spool = str(tmp_path / "spool")
        queue = IngestQueue()
        watcher = SpoolWatcher(spool, queue)
        snapshot = self._snapshot()
        path = os.path.join(spool, "snapshot_0001.dat")
        write_snapshot(snapshot, path)
        with open(path, "rb") as f:
            full = f.read()
        with open(path, "wb") as f:  # torn on a record boundary
            f.write(b"\n".join(full.split(b"\n")[:5]) + b"\n")
        assert watcher.scan_once() == 0
        assert watcher.files_deferred == 1
        assert os.path.exists(path)  # left in place for the retry
        with open(path, "wb") as f:  # producer finishes the write
            f.write(full)
        assert watcher.scan_once() == 1
        assert queue.pop().snapshot.index == snapshot.index

    def test_inflight_tmp_and_part_files_invisible(self, tmp_path):
        spool = str(tmp_path / "spool")
        watcher = SpoolWatcher(spool, IngestQueue())
        for name in ("snapshot_0001.dat.tmp", "snapshot_0002.dat.part",
                     "snapshot_0003.part"):
            with open(os.path.join(spool, name), "wb") as f:
                f.write(b"garbage in flight")
        assert watcher.scan_once() == 0
        assert watcher.files_deferred == 0  # never even candidates

    def test_drop_snapshot_is_atomic_and_readable(self, tmp_path):
        spool = str(tmp_path / "spool")
        snapshot = self._snapshot(index=7)
        path = drop_snapshot(spool, snapshot)
        assert os.path.basename(path) == "snapshot_0007.dat"
        assert not os.path.exists(path + ".tmp")
        loaded = read_snapshot(path)
        assert loaded.index == 7 and len(loaded) == len(snapshot)
        queue = IngestQueue()
        watcher = SpoolWatcher(spool, queue)
        assert watcher.scan_once() == 1


# ---------------------------------------------------------------------------
# Satellite 3b: stop() must report a failed shutdown


class TestStopReturnsBool:
    def test_clean_stop_returns_true(self, tmp_path):
        loop = IngestLoop(_talk_registry(tmp_path), IngestQueue())
        loop.start()
        assert loop.stop() is True
        assert loop.stop_failures == 0
        assert not loop.running

    def test_wedged_apply_surfaces_as_false(self, tmp_path, snapshots):
        """Pre-PR: ``stop()`` returned None and dropped the thread
        handle even when the join timed out — a wedged apply looked
        exactly like a clean shutdown."""
        registry = _talk_registry(tmp_path)
        queue = IngestQueue()
        loop = IngestLoop(registry, queue)
        release = threading.Event()
        entered = threading.Event()

        def blocking_hook(_snapshot):
            entered.set()
            release.wait(timeout=30.0)

        registry.get("talk")._apply_hook = blocking_hook
        loop.start()
        queue.push(snapshots[0])
        assert entered.wait(timeout=30.0)
        assert loop.stop(timeout=0.2) is False
        assert loop.stop_failures == 1
        assert loop.running  # the truth, not a dropped handle
        release.set()
        assert loop.stop(timeout=30.0) is True
        assert not loop.running

    def test_watcher_stop_returns_true(self, tmp_path):
        watcher = SpoolWatcher(str(tmp_path / "spool"), IngestQueue(),
                               poll_seconds=0.01)
        watcher.start()
        assert watcher.stop() is True
        assert watcher.stop_failures == 0

    def test_stop_before_start_is_true(self, tmp_path):
        loop = IngestLoop(_talk_registry(tmp_path), IngestQueue())
        assert loop.stop() is True


# ---------------------------------------------------------------------------
# Satellite 4: every derived rate guards its denominator


class TestRateGuards:
    @pytest.mark.parametrize("wall,jobs,expect_pps", [
        (0.0, 0, 0.0),    # instant run, no workers
        (0.0, 4, 0.0),    # instant run (the classic ZeroDivisionError)
        (2.0, 0, 1.5),    # wall fine, jobs degenerate -> util only
        (-1.0, 2, 0.0),   # nonsense negative clock
    ])
    def test_runtime_metrics_degenerate(self, wall, jobs, expect_pps):
        from repro.runtime.metrics import BatchMetric, RuntimeMetrics

        m = RuntimeMetrics(backend="thread", jobs=jobs,
                           wall_seconds=wall,
                           batches=[BatchMetric(0, 3, 30, 0.5)])
        assert m.pages_per_second == expect_pps
        assert m.worker_utilization == 0.0
        doc = m.to_dict()  # must serialize without nan/inf
        import math
        assert math.isfinite(doc["pages_per_second"])
        assert math.isfinite(doc["worker_utilization"])

    def test_runtime_metrics_utilization_capped(self):
        from repro.runtime.metrics import BatchMetric, RuntimeMetrics

        m = RuntimeMetrics(backend="thread", jobs=1, wall_seconds=1.0,
                           batches=[BatchMetric(0, 3, 30, 5.0)])
        assert m.worker_utilization == 1.0

    def test_fastpath_stats_empty(self):
        from repro.fastpath.stats import FastPathStats

        stats = FastPathStats()
        assert stats.memo_hit_rate == 0.0
        assert stats.unchanged_fraction == 0.0

    def test_serve_qps_at_zero_uptime(self, tmp_path, monkeypatch):
        from repro.serve import ServeApp

        registry = _talk_registry(tmp_path)
        queue = IngestQueue()
        app = ServeApp(registry, queue, IngestLoop(registry, queue))
        monkeypatch.setattr(time, "monotonic",
                            lambda: app.started_mono)  # frozen clock
        assert app.uptime_seconds == 0.0
        assert app.queries_per_second == 0.0  # not ZeroDivisionError

    def test_histogram_mean_empty(self):
        from repro.obs.registry import Histogram

        assert Histogram((1.0,)).mean == 0.0
