"""Cross-cutting coverage: probes, baselines under churn, misc APIs."""

import os

import pytest

from repro.core.cyclex import CyclexSystem
from repro.core.noreuse import NoReuseSystem
from repro.core.runner import canonical_results
from repro.core.shortcut import ShortcutSystem
from repro.corpus.evolve import ChangeModel, EvolvingCorpus
from repro.corpus.generators import DBLifeGenerator
from repro.corpus.snapshot import Snapshot, snapshot_from_texts
from repro.extractors import make_task
from repro.optimizer.params import CostWeights, probe_io_weight
from repro.plan import compile_program, find_units
from repro.reuse.engine import PlanAssignment, ReuseEngine
from repro.reuse.files import load_reuse_file


class TestProbes:
    def test_io_weight_positive(self):
        weight = probe_io_weight(blocks=16)
        assert 0 < weight < 0.1

    def test_cost_weights_rate_of(self):
        weights = CostWeights(match_rate={"ST": 1e-6})
        assert weights.rate_of("DN") == 0.0
        assert weights.rate_of("ST") == 1e-6
        assert weights.rate_of("RU") < 1e-6
        assert weights.rate_of("UD") > 0  # default for unprobed


class TestCyclexMatcherChoice:
    def _snaps(self, p_unchanged):
        model = ChangeModel(p_unchanged=p_unchanged, p_removed=0.0,
                            p_added=0.0, mean_edits=2.0)
        corpus = EvolvingCorpus(DBLifeGenerator(), 12, model, seed=2)
        return list(corpus.snapshots(2))

    def test_identical_corpus_prefers_matching(self, tmp_path):
        task = make_task("talk", work_scale=0.3)
        plan = compile_program(task.program, task.registry)
        system = CyclexSystem(plan, str(tmp_path), task.program_alpha,
                              task.program_beta)
        snaps = self._snaps(p_unchanged=1.0)
        system.process(snaps[0])
        system.process(snaps[1], snaps[0])
        assert system.last_matcher in ("UD", "ST")

    def test_results_correct_either_way(self, tmp_path):
        task = make_task("talk", work_scale=0)
        plan = compile_program(task.program, task.registry)
        system = CyclexSystem(plan, str(tmp_path), task.program_alpha,
                              task.program_beta)
        snaps = self._snaps(p_unchanged=0.3)
        prev = None
        for snap in snaps:
            got = system.process(snap, prev)
            want = NoReuseSystem(plan).process(snap)
            assert canonical_results(got) == canonical_results(want)
            prev = snap


class TestBaselinesUnderChurn:
    """Pages removed and added between snapshots must not desync the
    baselines' sequential result files."""

    def _texts(self, keys):
        return {k: f"== Service ==\n{name} serves as demo chair of "
                   f"VLDB 200{i}.\n"
                for i, (k, name) in enumerate(keys.items())}

    def test_shortcut_with_removed_pages(self, tmp_path):
        task = make_task("chair", work_scale=0)
        plan = compile_program(task.program, task.registry)
        system = ShortcutSystem(plan, str(tmp_path))
        s0 = snapshot_from_texts(0, self._texts(
            {"a": "Alice Chen", "b": "Bob Weber", "c": "Cat Kumar"}))
        # b removed, d added, a unchanged, c unchanged.
        s1 = snapshot_from_texts(1, self._texts(
            {"a": "Alice Chen", "c": "Cat Kumar", "d": "Dan Olsen"}))
        system.process(s0)
        got = system.process(s1, s0)
        want = NoReuseSystem(plan).process(s1)
        assert canonical_results(got) == canonical_results(want)

    def test_cyclex_with_removed_pages(self, tmp_path):
        task = make_task("chair", work_scale=0)
        plan = compile_program(task.program, task.registry)
        system = CyclexSystem(plan, str(tmp_path), task.program_alpha,
                              task.program_beta)
        s0 = snapshot_from_texts(0, self._texts(
            {"a": "Alice Chen", "b": "Bob Weber", "c": "Cat Kumar"}))
        s1 = snapshot_from_texts(1, self._texts(
            {"c": "Cat Kumar", "e": "Eve Novak"}))
        system.process(s0)
        got = system.process(s1, s0)
        want = NoReuseSystem(plan).process(s1)
        assert canonical_results(got) == canonical_results(want)


class TestLoadReuseFile:
    def test_roundtrip_matches_streaming(self, tmp_path):
        task = make_task("play", work_scale=0)
        plan = compile_program(task.program, task.registry)
        units = find_units(plan)
        engine = ReuseEngine(plan, units, PlanAssignment.all_dn(units))
        text = ("== Filmography ==\n"
                "Nina Weber starred as Dr. Malone in Crimson Harbor "
                "(1999).\n")
        snap = snapshot_from_texts(0, {"u1": text, "u2": text})
        out = str(tmp_path / "cap")
        result = engine.run_snapshot(snap, None, None, out)
        uid = units[0].uid
        i_loaded = load_reuse_file(
            os.path.join(out, f"{uid}.I.reuse"), "I")
        o_loaded = load_reuse_file(
            os.path.join(out, f"{uid}.O.reuse"), "O")
        assert set(i_loaded) == {"u1", "u2"}
        assert sum(len(v) for v in i_loaded.values()) == \
            result.unit_stats[uid].input_tuples
        assert sum(len(v) for v in o_loaded.values()) == \
            result.unit_stats[uid].output_tuples


class TestFindUnitsNoAbsorb:
    def test_blackbox_level_equals_unit_level_results(self, tmp_path):
        task = make_task("blockbuster", work_scale=0)
        plan = compile_program(task.program, task.registry)
        text = ("== Box office ==\n"
                "Midnight Horizon grossed $240 million worldwide.\n"
                "Velvet Garden grossed $35 million worldwide.\n")
        s0 = snapshot_from_texts(0, {"u": text})
        s1 = snapshot_from_texts(1, {"u": text.replace("$240", "$250")})
        outputs = []
        for absorb in (True, False):
            units = find_units(plan, absorb=absorb)
            engine = ReuseEngine(plan, units,
                                 PlanAssignment.uniform(units, "UD"))
            d0 = str(tmp_path / f"{absorb}0")
            d1 = str(tmp_path / f"{absorb}1")
            engine.run_snapshot(s0, None, None, d0)
            outputs.append(canonical_results(
                engine.run_snapshot(s1, s0, d0, d1)))
        assert outputs[0] == outputs[1]

    def test_no_absorb_units_have_empty_absorbed(self):
        task = make_task("blockbuster", work_scale=0)
        plan = compile_program(task.program, task.registry)
        for unit in find_units(plan, absorb=False):
            assert unit.absorbed == ()
