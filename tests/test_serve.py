"""repro.serve — the incremental serving layer, end to end.

Pins the PR's acceptance properties: serve results identical to batch
NoReuse at every generation (both maintenance modes), no response ever
mixes generations under concurrent reader/writer load, pagination
edges, the quarantine path (a fault-injected apply leaves the previous
generation serving and degrades ``/healthz``), backpressure, the spool
watcher, and the HTTP surface.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import urllib.request

import pytest

from repro.core.runner import canonical_results, make_system
from repro.corpus import dblife_corpus
from repro.corpus.snapshot import write_snapshot
from repro.serve import (
    IngestLoop,
    IngestQueue,
    ServeApp,
    SpoolWatcher,
    TupleStore,
    ViewConfig,
    ViewRegistry,
    serve_in_thread,
)
from repro.serve.store import EmptyViewError, UnknownRelationError


@pytest.fixture(scope="module")
def snapshots():
    return list(dblife_corpus(n_pages=10, seed=5,
                              p_unchanged=0.5).snapshots(4))


@pytest.fixture(scope="module")
def reference(snapshots):
    """Batch NoReuse canonical results, per snapshot index."""
    from repro.extractors import make_task

    task = make_task("talk", work_scale=0)
    ref = {}
    with tempfile.TemporaryDirectory() as workdir:
        system = make_system("noreuse", task, workdir)
        for snapshot in snapshots:
            ref[snapshot.index] = canonical_results(
                system.process(snapshot))
    return ref


def _talk_config(**overrides):
    kwargs = dict(name="talk", task="talk", work_scale=0.0)
    kwargs.update(overrides)
    return ViewConfig(**kwargs)


def _snapshot_doc(snapshot):
    return {"index": snapshot.index,
            "pages": [{"url": p.did, "text": p.text}
                      for p in snapshot.pages]}


# ---------------------------------------------------------------------------
# TupleStore


class TestTupleStore:
    def _store(self):
        store = TupleStore("v", ("rel",))
        store.apply_delta(0, {
            "p1": {"rel": [(("x", "a"),), (("x", "b"),)]},
            "p2": {"rel": [(("x", "c"),), (("x", "a"),)]},  # dup "a"
        })
        return store

    def test_empty_view_raises(self):
        store = TupleStore("v", ("rel",))
        with pytest.raises(EmptyViewError):
            store.query("rel")

    def test_unknown_relation_raises(self):
        store = self._store()
        with pytest.raises(UnknownRelationError):
            store.query("nope")

    def test_dedup_and_total(self):
        result = self._store().query("rel", limit=100)
        assert result.total == 3          # "a" appears on both pages
        assert len(result.tuples) == 3

    def test_offset_past_end_is_empty_with_total(self):
        result = self._store().query("rel", offset=50, limit=10)
        assert result.tuples == []
        assert result.total == 3
        assert result.offset == 50

    def test_pagination_concatenates_to_full_list(self):
        store = self._store()
        full = store.query("rel", limit=100).tuples
        paged = (store.query("rel", offset=0, limit=2).tuples
                 + store.query("rel", offset=2, limit=2).tuples)
        assert paged == full
        # Deterministic: same query, same page.
        assert store.query("rel", offset=1, limit=1).tuples == \
            store.query("rel", offset=1, limit=1).tuples

    def test_negative_offset_clamped(self):
        result = self._store().query("rel", offset=-5, limit=2)
        assert result.offset == 0
        assert len(result.tuples) == 2

    def test_contains_and_field_filters(self):
        store = self._store()
        assert store.query("rel", contains="A").total == 1
        assert store.query("rel", field_filters={"x": "b"}).total == 1
        assert store.query("rel", field_filters={"x": "zz"}).total == 0

    def test_delta_shares_unchanged_pages_by_reference(self):
        store = self._store()
        gen1 = store.current()
        store.apply_delta(1, {"p2": {"rel": [(("x", "d"),)]}})
        gen2 = store.current()
        assert gen2.gen_id == gen1.gen_id + 1
        assert gen2.page_rows["p1"] is gen1.page_rows["p1"]
        assert gen2.page_rows["p2"] is not gen1.page_rows["p2"]
        # Old generation untouched — a reader holding it sees old rows.
        assert gen1.relations["rel"] != gen2.relations["rel"]

    def test_deletes_drop_pages(self):
        store = self._store()
        store.apply_delta(1, {}, deletes=["p2", "ghost"])
        gen = store.current()
        assert gen.pages_deleted == 1
        assert set(gen.page_rows) == {"p1"}
        assert gen.relations["rel"] == ((("x", "a"),), (("x", "b"),))


# ---------------------------------------------------------------------------
# View maintenance == batch NoReuse, both modes


class TestViewMaintenance:
    @pytest.mark.parametrize("mode", ["delex", "noreuse"])
    def test_every_generation_matches_batch(self, mode, snapshots,
                                            reference, tmp_path):
        registry = ViewRegistry(str(tmp_path))
        view = registry.register(_talk_config(system=mode))
        for snapshot in snapshots:
            record = view.apply_snapshot(snapshot, check=True)
            generation = view.generation
            assert generation.gen_id == record.gen_id
            assert generation.snapshot_index == snapshot.index
            assert generation.canonical() == reference[snapshot.index]
        assert view.healthy
        assert len(view.history) == len(snapshots)

    def test_modes_publish_identical_stores(self, snapshots, tmp_path):
        generations = {}
        for mode in ("delex", "noreuse"):
            registry = ViewRegistry(str(tmp_path / mode))
            view = registry.register(_talk_config(system=mode))
            for snapshot in snapshots:
                view.apply_snapshot(snapshot)
            generations[mode] = view.generation
        assert generations["delex"].relations == \
            generations["noreuse"].relations
        assert generations["delex"].page_rows == \
            generations["noreuse"].page_rows

    def test_snapshot_index_must_advance(self, snapshots, tmp_path):
        registry = ViewRegistry(str(tmp_path))
        view = registry.register(_talk_config())
        view.apply_snapshot(snapshots[1])
        with pytest.raises(ValueError):
            view.apply_snapshot(snapshots[1])
        with pytest.raises(ValueError):
            view.apply_snapshot(snapshots[0])


# ---------------------------------------------------------------------------
# Quarantine: fault-injected applies


class TestQuarantine:
    def test_failed_apply_keeps_previous_generation(self, snapshots,
                                                    reference, tmp_path):
        registry = ViewRegistry(str(tmp_path))
        view = registry.register(_talk_config())
        loop = IngestLoop(registry, IngestQueue())

        assert loop.apply_one(snapshots[0])
        gen1 = view.generation

        view._apply_hook = lambda snapshot: (_ for _ in ()).throw(
            RuntimeError("injected apply fault"))
        assert not loop.apply_one(snapshots[1])
        assert not view.healthy
        assert view.quarantine[0]["snapshot_index"] == snapshots[1].index
        assert "injected apply fault" in view.last_error
        # The store still serves the exact pre-fault generation object.
        assert view.generation is gen1
        assert loop.snapshots_quarantined == 1
        assert loop.applies_failed == 2     # retried once, then gave up

        # Later snapshots flow across the gap and land correctly.
        view._apply_hook = None
        assert loop.apply_one(snapshots[2])
        generation = view.generation
        assert generation.snapshot_index == snapshots[2].index
        assert generation.canonical() == reference[snapshots[2].index]
        # healthz degrades while quarantine is non-empty.
        app = ServeApp(registry, loop.queue, loop)
        status, payload = app.handle_healthz()
        assert status == 503
        assert payload["status"] == "degraded"
        assert any("quarantined" in reason
                   for reason in payload["reasons"])

    def test_transient_fault_heals_on_retry(self, snapshots, tmp_path):
        registry = ViewRegistry(str(tmp_path))
        view = registry.register(_talk_config())
        loop = IngestLoop(registry, IngestQueue())
        calls = {"n": 0}

        def flaky(snapshot):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient")

        view._apply_hook = flaky
        assert loop.apply_one(snapshots[0])
        assert view.healthy
        assert not view.quarantine
        assert loop.applies_failed == 1
        assert view.generation.snapshot_index == snapshots[0].index

    def test_stale_snapshot_skipped_not_quarantined(self, snapshots,
                                                    tmp_path):
        registry = ViewRegistry(str(tmp_path))
        view = registry.register(_talk_config())
        loop = IngestLoop(registry, IngestQueue())
        assert loop.apply_one(snapshots[1])
        gen = view.generation
        # Re-pushing an applied (or older) snapshot is a no-op.
        assert loop.apply_one(snapshots[0])
        assert loop.apply_one(snapshots[1])
        assert view.generation is gen
        assert view.healthy
        assert loop.recent[-1]["skipped"] == "stale"


# ---------------------------------------------------------------------------
# Concurrent readers vs the single writer


class TestConcurrency:
    def test_readers_never_observe_mixed_generations(self, snapshots,
                                                     reference,
                                                     tmp_path):
        registry = ViewRegistry(str(tmp_path))
        view = registry.register(_talk_config())
        relations = list(view.store.schema)
        stop = threading.Event()
        errors = []
        generations_seen = set()

        def reader():
            while not stop.is_set():
                for rel in relations:
                    try:
                        result = view.query(rel, limit=1000)
                    except EmptyViewError:
                        continue
                    except Exception as exc:  # noqa: BLE001
                        errors.append(repr(exc))
                        stop.set()
                        return
                    expected = reference[result.snapshot_index][rel]
                    if frozenset(result.tuples) != expected or \
                            result.total != len(result.tuples):
                        errors.append(
                            f"generation {result.generation} "
                            f"(snapshot {result.snapshot_index}) "
                            f"relation {rel}: response does not match "
                            "the batch reference for its own snapshot")
                        stop.set()
                        return
                    generations_seen.add(result.generation)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        try:
            for snapshot in snapshots:
                view.apply_snapshot(snapshot)
                time.sleep(0.03)    # let readers sample this generation
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=5)
        assert not errors, errors[0]
        assert generations_seen, "readers never observed a generation"

    def test_reader_holding_old_generation_is_unaffected(self, snapshots,
                                                         reference,
                                                         tmp_path):
        registry = ViewRegistry(str(tmp_path))
        view = registry.register(_talk_config())
        view.apply_snapshot(snapshots[0])
        held = view.generation
        view.apply_snapshot(snapshots[1])
        # The held reference still answers with snapshot 0's rows.
        assert held.canonical() == reference[snapshots[0].index]
        assert view.generation.canonical() == \
            reference[snapshots[1].index]


# ---------------------------------------------------------------------------
# HTTP surface


def _build_app(workdir, queue_size=8, check=False):
    registry = ViewRegistry(os.path.join(workdir, "views"))
    registry.register(_talk_config())
    ingest_queue = IngestQueue(maxsize=queue_size)
    loop = IngestLoop(registry, ingest_queue, check=check)
    return ServeApp(registry, ingest_queue, loop)


def _get(base, path):
    with urllib.request.urlopen(base + path) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


def _post(base, path, doc):
    req = urllib.request.Request(
        base + path, data=json.dumps(doc).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(req) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


class TestHTTP:
    def test_end_to_end(self, snapshots, reference, tmp_path):
        app = _build_app(str(tmp_path), check=True)
        server, _thread = serve_in_thread(app)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            # Before any ingest: query is 503, healthz is 200.
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(base, "/query")
            assert exc.value.code == 503

            for snapshot in snapshots:
                status, payload = _post(base, "/ingest",
                                        _snapshot_doc(snapshot))
                assert status == 202 and payload["queued"]
            assert app.loop.drain(timeout=120)

            status, root = _get(base, "/")
            assert status == 200 and root["views"] == ["talk"]

            view = app.registry.get("talk")
            last = snapshots[-1].index
            for rel in view.store.schema:
                status, doc = _get(base,
                                   f"/query?relation={rel}&limit=1000")
                assert status == 200
                assert doc["view"] == "talk"
                assert doc["snapshot_index"] == last
                assert doc["total"] == len(reference[last][rel])
                assert doc["count"] == doc["total"]
                # Every tuple is a JSON field map (spans expanded).
                for tup in doc["tuples"]:
                    assert isinstance(tup, dict) and tup

            status, health = _get(base, "/healthz")
            assert status == 200 and health["status"] == "ok"

            status, views = _get(base, "/views")
            assert status == 200
            assert views["views"]["talk"]["healthy"]

            status, metrics = _get(base, "/metrics")
            assert status == 200
            talk = metrics["views"]["talk"]
            assert len(talk["applies"]) == len(snapshots)
            assert talk["last_apply"]["lag_seconds"] is not None
            assert metrics["ingest"]["snapshots_applied"] == \
                len(snapshots)
            assert metrics["queries_served"] >= 1
            assert "timings" in talk["last_apply"]
        finally:
            server.shutdown()
            server.server_close()
            app.shutdown()

    def test_error_routes(self, tmp_path):
        app = _build_app(str(tmp_path))
        assert app.handle_query({"view": "nope"})[0] == 404
        assert app.handle_query({"view": "talk",
                                 "offset": "abc"})[0] == 400
        assert app.handle_ingest(b"not json")[0] == 400
        assert app.handle_ingest(b'{"index": 0}')[0] == 400

    def test_backpressure_returns_429(self, snapshots, tmp_path):
        # Loop never started: the queue fills and /ingest fails fast.
        app = _build_app(str(tmp_path), queue_size=1)
        body = json.dumps(_snapshot_doc(snapshots[0])).encode()
        assert app.handle_ingest(body)[0] == 202
        status, payload = app.handle_ingest(body)
        assert status == 429
        assert payload["queue"]["rejected"] == 1


# ---------------------------------------------------------------------------
# Spool watcher


class TestSpoolWatcher:
    def test_picks_up_files_in_index_order(self, snapshots, tmp_path):
        spool = str(tmp_path / "spool")
        ingest_queue = IngestQueue(maxsize=8)
        watcher = SpoolWatcher(spool, ingest_queue)
        # Drop out of order; the sweep pushes in index order anyway.
        write_snapshot(snapshots[1],
                       os.path.join(spool, "snapshot_0001.dat"))
        write_snapshot(snapshots[0],
                       os.path.join(spool, "snapshot_0000.dat"))
        assert watcher.scan_once() == 2
        first = ingest_queue.pop(timeout=1)
        second = ingest_queue.pop(timeout=1)
        assert first.snapshot.index == snapshots[0].index
        assert second.snapshot.index == snapshots[1].index
        done = os.listdir(os.path.join(spool, "done"))
        assert sorted(done) == ["snapshot_0000.dat",
                                "snapshot_0001.dat"]
        # A second sweep finds nothing new.
        assert watcher.scan_once() == 0
        assert watcher.files_ingested == 2
        assert watcher.last_index == 1

    def test_ignores_garbage_files(self, snapshots, tmp_path):
        spool = str(tmp_path / "spool")
        ingest_queue = IngestQueue(maxsize=8)
        watcher = SpoolWatcher(spool, ingest_queue)
        with open(os.path.join(spool, "snapshot_0000.dat"), "w") as f:
            f.write("torn write")
        with open(os.path.join(spool, "notes.txt"), "w") as f:
            f.write("not a snapshot")
        assert watcher.scan_once() == 0
        assert ingest_queue.depth == 0


# ---------------------------------------------------------------------------
# CLI


class TestCLI:
    def test_serve_demo_smoke(self, tmp_path, capsys):
        from repro.cli import main

        status_path = str(tmp_path / "status.json")
        rc = main([
            "serve", "--demo", "--tasks", "talk", "--port", "0",
            "--work-scale", "0", "--demo-pages", "8",
            "--demo-snapshots", "2", "--check", "on",
            "--max-seconds", "0.2", "--status-json", status_path,
            "--workdir", str(tmp_path / "work"),
        ])
        assert rc == 0
        with open(status_path, encoding="utf-8") as f:
            status = json.load(f)
        assert status["healthz"]["status"] == "ok"
        talk = status["metrics"]["views"]["talk"]
        assert len(talk["applies"]) == 2
        assert talk["generation"]["tuples"] >= 0
        out = capsys.readouterr().out
        assert "serving 1 view(s)" in out

    def test_run_metrics_json(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "metrics.json")
        rc = main(["run", "--task", "talk",
                   "--systems", "noreuse,delex", "--work-scale", "0",
                   "--metrics-json", path])
        assert rc == 0
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        assert doc["task"] == "talk"
        assert set(doc["systems"]) == {"noreuse", "delex"}
        for system in doc["systems"].values():
            assert system["total_seconds"] > 0
            assert len(system["snapshots"]) == doc["n_snapshots"]
            for snap in system["snapshots"]:
                assert "timings" in snap
                assert snap["timings"]["total"] >= 0
