"""repro.delta: counted multisets, per-operator rules, classifier,
and the DeltaMaintainer against per-page plain evaluation."""

from collections import namedtuple

import pytest

from repro.delta.classify import (
    PageDecision,
    UpdateClassifier,
    edit_window,
    plan_delta_blockers,
)
from repro.delta.deltaset import (
    DeltaSet,
    Multiset,
    NegativeMultiplicityError,
)
from repro.delta.maintain import (
    DeltaMaintainer,
    DeltaStateError,
    merge_sorted_index,
)
from repro.delta.rows import (
    freeze_row,
    freeze_rows,
    is_span_value,
    merge_frozen,
    thaw_row,
)
from repro.delta.rules import DeltaCounters, PagePlanDelta
from repro.corpus.snapshot import snapshot_from_texts
from repro.extractors.rules import RegexExtractor, SectionExtractor
from repro.plan.compile import compile_program
from repro.plan.operators import evaluate_plain
from repro.text.span import Span
from repro.xlog.parser import parse_program
from repro.xlog.registry import Registry


def build_registry():
    reg = Registry()
    reg.register_extractor(RegexExtractor(
        "extractName", r"(?P<v>[A-Z][a-z]+ [A-Z][a-z]+)",
        groups={"v": "v"}, scope=40, context=2))
    reg.register_extractor(RegexExtractor(
        "extractYear", r"(?P<v>\d{4})", groups={"v": "v"},
        scope=10, context=2))
    reg.register_extractor(SectionExtractor(
        "extractBody", "v", "Body", scope=500, context=32))
    reg.register_extractor(RegexExtractor(
        "extractAmount", r"\$(?P<v>\d+)(?P<t>M)",
        groups={"t": "t"},
        scalars={"v": lambda m: int(m.group("v"))},
        scope=15, context=2))
    return reg


def compile_src(src):
    return compile_program(parse_program(src), build_registry())


PAGE = ("intro Alice Chen in 1999\n"
        "== Body ==\n"
        "Karen Xu spent $120M in 2001\n")

#: Program exercising chain + join + row-determined select + union.
RICH_SRC = """
    names(v) :- docs(d), extractBody(d, b), extractName(b, v).
    pairs(n, y) :- docs(d), extractName(d, n), extractYear(d, y),
                   before(n, y).
    found(v) :- docs(d), extractName(d, v).
    found(v) :- docs(d), extractYear(d, v).
    rich(t) :- docs(d), extractAmount(d, t, v), atLeast(v, 100).
"""


def plain_page_rows(plan, text, did):
    """Ground truth: plain evaluation, frozen to canonical tuples."""
    memo = {}
    out = {}
    for rel in plan.program.head_relations():
        rows = evaluate_plain(plan.roots[rel], text, did, memo)
        out[rel] = set(freeze_rows(rows, text))
    return out


Diff = namedtuple("Diff", "changed new deleted unchanged resurrected")


def diff_texts(prev, cur, tombstones=()):
    changed = tuple(d for d in cur if d in prev and prev[d] != cur[d])
    new = tuple(d for d in cur if d not in prev)
    deleted = tuple(sorted(d for d in prev if d not in cur))
    unchanged = tuple(d for d in cur if d in prev and prev[d] == cur[d])
    resurrected = tuple(d for d in new if d in tombstones)
    return Diff(changed, new, deleted, unchanged, resurrected)


def run_series(maintainer, series):
    """Apply a list of {url: text} corpora; yield per-gen results."""
    prev = {}
    tombstones = set()
    for i, texts in enumerate(series):
        snap = snapshot_from_texts(i, texts)
        cur = {p.did: p.text for p in snap.canonical_pages()}
        diff = diff_texts(prev, cur, tombstones)
        result = maintainer.apply(snap, diff, check=True)
        tombstones |= set(diff.deleted)
        tombstones -= set(diff.resurrected)
        prev = cur
        yield snap, result


def assert_matches_batch(maintainer, snap):
    """Maintained index and page rows equal from-scratch evaluation."""
    plan_delta = maintainer.plan_delta
    pages = {p.did: p.text for p in snap.canonical_pages()}
    want_union = {rel: set() for rel in maintainer.relations}
    for did, text in pages.items():
        want = plain_page_rows(maintainer.plan_delta.plan, text, did)
        got = plan_delta.page_rows(maintainer.states[did])
        for rel in want_union:
            assert set(got[rel]) == want[rel], (did, rel)
            want_union[rel] |= want[rel]
    for rel, want in want_union.items():
        assert maintainer.index[rel] == tuple(
            sorted(want, key=repr)), rel


class TestDeltaSet:
    def test_add_cancels_to_zero(self):
        d = DeltaSet()
        d.add(("row",), 2)
        d.add(("row",), -2)
        assert d.is_empty()
        assert ("row",) not in d

    def test_from_rows_accumulates_duplicates(self):
        d = DeltaSet.from_rows([("a",), ("a",), ("b",)])
        assert d.count(("a",)) == 2
        assert d.count(("b",)) == 1
        assert d.weight() == 3

    def test_update_is_group_addition(self):
        d = DeltaSet.from_rows([("a",)])
        d.update(DeltaSet.from_rows([("a",)], count=-1))
        assert d.is_empty()

    def test_negated(self):
        d = DeltaSet.from_rows([("a",)], count=3).negated()
        assert d.count(("a",)) == -3

    def test_adds_and_dels_partition(self):
        d = DeltaSet()
        d.add(("a",), 1)
        d.add(("b",), -2)
        assert d.adds() == [(("a",), 1)]
        assert d.dels() == [(("b",), -2)]


class TestMultiset:
    def test_support_transitions(self):
        m = Multiset()
        appeared, vanished = m.apply(DeltaSet.from_rows([("a",)], 2))
        assert appeared == [("a",)] and vanished == []
        # 2 -> 1: no transition.
        appeared, vanished = m.apply(DeltaSet.from_rows([("a",)], -1))
        assert appeared == [] and vanished == []
        # 1 -> 0: vanishes.
        appeared, vanished = m.apply(DeltaSet.from_rows([("a",)], -1))
        assert vanished == [("a",)]
        assert m.is_empty()

    def test_underflow_raises(self):
        m = Multiset()
        with pytest.raises(NegativeMultiplicityError):
            m.apply(DeltaSet.from_rows([("a",)], -1), where="test")

    def test_as_delta_retract_everything(self):
        m = Multiset()
        m.apply(DeltaSet.from_rows([("a",), ("a",), ("b",)]))
        retract = m.as_delta(sign=-1)
        m.apply(retract)
        assert m.is_empty()


class TestFrozenRows:
    def test_freeze_embeds_span_text(self):
        frozen = freeze_row({"v": Span("d0", 6, 16)}, PAGE)
        assert frozen == (("v", (6, 16, "Alice Chen")),)
        assert is_span_value(frozen[0][1])

    def test_scalars_pass_through_and_never_look_like_spans(self):
        frozen = freeze_row({"n": 120, "s": "x"}, PAGE)
        assert frozen == (("n", 120), ("s", "x"))
        assert not any(is_span_value(v) for _, v in frozen)

    def test_thaw_round_trip(self):
        row = {"v": Span("d0", 6, 16), "n": 7}
        assert thaw_row(freeze_row(row, PAGE), "d0") == row

    def test_merge_frozen(self):
        left = (("a", 1),)
        right = (("b", 2),)
        assert merge_frozen(left, right) == (("a", 1), ("b", 2))


class TestRules:
    def test_new_page_equals_plain_eval(self):
        plan = compile_src(RICH_SRC)
        pd = PagePlanDelta(plan)
        state = pd.new_page_state("d0")
        pd.apply_page_text(state, PAGE)
        want = plain_page_rows(plan, PAGE, "d0")
        got = pd.page_rows(state)
        for rel in want:
            assert set(got[rel]) == want[rel], rel

    def test_edit_propagates_to_plain_eval(self):
        plan = compile_src(RICH_SRC)
        pd = PagePlanDelta(plan)
        state = pd.new_page_state("d0")
        pd.apply_page_text(state, PAGE)
        edited = PAGE.replace("$120M", "$50M").replace("2001", "2007")
        pd.apply_page_text(state, edited)
        want = plain_page_rows(plan, edited, "d0")
        got = pd.page_rows(state)
        for rel in want:
            assert set(got[rel]) == want[rel], rel

    def test_deletion_drains_state_without_extractor_calls(self):
        plan = compile_src(RICH_SRC)
        pd = PagePlanDelta(plan)
        state = pd.new_page_state("d0")
        pd.apply_page_text(state, PAGE)
        counters = DeltaCounters()
        deltas = pd.apply_page_text(state, None, counters)
        assert counters.extractor_calls == 0
        assert state.is_drained()
        # Everything that was added is retracted, nothing else.
        assert all(c < 0 for delta in deltas.values()
                   for _, c in delta.items())

    def test_unchanged_section_hits_ie_memo(self):
        # Edit outside == Body ==: the chained extractName over the
        # body region must reuse its memoized extractions.
        plan = compile_src(
            "names(v) :- docs(d), extractBody(d, b), extractName(b, v).")
        pd = PagePlanDelta(plan)
        state = pd.new_page_state("d0")
        pd.apply_page_text(state, PAGE)
        counters = DeltaCounters()
        pd.apply_page_text(state, "prefix edit\n" + PAGE, counters)
        # Prefix edit shifts the body region's offsets: both the body
        # and the chained name extractor must actually re-run.
        assert counters.extractor_calls == 2
        state2 = pd.new_page_state("d1")
        pd.apply_page_text(state2, PAGE)
        counters2 = DeltaCounters()
        # Same-length edit before the section: the body region keeps
        # its offsets and text, so only the whole-page extractor
        # re-runs; its old/new body outputs cancel and extractName
        # does no work at all.
        pd.apply_page_text(state2, PAGE.replace("intro", "intrA"),
                           counters2)
        assert counters2.extractor_calls == 1
        assert counters2.memo_hits >= 1
        assert counters2.rows_added == 0
        assert counters2.rows_retracted == 0


class TestClassifier:
    def test_edit_window(self):
        assert edit_window("abcdef", "abXdef") == (2, 3)
        prefix, suffix = edit_window("same", "same")
        assert prefix + suffix <= 4

    def test_row_determined_plan_small_edit_is_delta(self):
        plan = compile_src(RICH_SRC)
        assert plan_delta_blockers(plan) == ()
        classifier = UpdateClassifier(plan)
        decision = classifier.classify_changed(
            "d0", PAGE, PAGE.replace("2001", "2007"))
        assert decision.decision == "delta"

    def test_imm_before_blocks_delta(self):
        plan = compile_src(
            "pairs(n, y) :- docs(d), extractName(d, n), "
            "extractYear(d, y), immBefore(n, y).")
        assert plan_delta_blockers(plan) == ("immBefore",)
        decision = UpdateClassifier(plan).classify_changed(
            "d0", PAGE, PAGE.replace("2001", "2007"))
        assert decision.decision == "fallback"
        assert "immBefore" in decision.reason

    def test_rewrite_falls_back(self):
        plan = compile_src(RICH_SRC)
        decision = UpdateClassifier(plan).classify_changed(
            "d0", PAGE, "completely different text with no overlap Q")
        assert decision.decision == "fallback"
        assert decision.edit_fraction > 0.6

    def test_unknown_decision_rejected(self):
        with pytest.raises(ValueError):
            PageDecision(did="d0", decision="nope", reason="")


class TestMergeSortedIndex:
    def test_merge_and_remove(self):
        old = tuple(sorted([("a",), ("c",), ("e",)], key=repr))
        got = merge_sorted_index(old, [("b",), ("f",)], [("c",)])
        assert got == tuple(sorted([("a",), ("b",), ("e",), ("f",)],
                                   key=repr))

    def test_noop_returns_same_object(self):
        old = (("a",),)
        assert merge_sorted_index(old, [], []) is old


class TestMaintainer:
    def test_series_matches_batch(self):
        m = DeltaMaintainer(compile_src(RICH_SRC))
        series = [
            {"u1": PAGE, "u2": "Nora Lane wrote in 1988\n"},
            {"u1": PAGE.replace("2001", "2013"),
             "u2": "Nora Lane wrote in 1988\n",
             "u3": "== Body ==\nOwen Hart spent $200M\n"},
            {"u1": PAGE.replace("2001", "2013"),
             "u3": "== Body ==\nOwen Hart spent $90M\n"},
        ]
        for snap, _result in run_series(m, series):
            assert_matches_batch(m, snap)

    def test_churn_cycle_retract_then_add(self):
        """Three snapshots: present -> absent -> back with identical
        text. The return must be a real retract-then-add (rows leave
        the index, then reappear), never a no-op."""
        m = DeltaMaintainer(compile_src(
            "names(v) :- docs(d), extractName(d, v)."))
        series = [
            {"stay": "Alice Chen\n", "churn": "Karen Xu\n"},
            {"stay": "Alice Chen\n"},
            {"stay": "Alice Chen\n", "churn": "Karen Xu\n"},
        ]
        results = [r for _s, r in run_series(m, series)]
        gen0, gen1, gen2 = (r.relations["names"] for r in results)
        assert len(gen0) == 2
        assert len(gen1) == 1  # Karen Xu retracted with the page
        assert gen2 == gen0    # resurrection re-adds, byte-identical
        churn_did = [d for d in results[2].decisions
                     if results[2].decisions[d].decision ==
                     "resurrected"]
        assert len(churn_did) == 1
        # The resurrected page was a real add: tuples flowed again.
        assert results[2].delta_weight > 0

    def test_multiplicity_zero_cancellation_across_pages(self):
        """Two pages producing the same canonical tuple: deleting one
        producer must NOT remove the tuple while the other remains."""
        m = DeltaMaintainer(compile_src(
            "names(v) :- docs(d), extractName(d, v)."))
        text = "Alice Chen\n"
        series = [
            {"a": text, "b": text},   # identical pages, same tuple
            {"a": text},              # one producer retracts
            {},                       # last producer retracts
        ]
        results = [r for _s, r in run_series(m, series)]
        assert len(results[0].relations["names"]) == 1
        assert len(results[1].relations["names"]) == 1  # survives!
        assert results[2].relations["names"] == ()
        assert m.relations["names"].is_empty()

    def test_fallback_page_still_tuple_granular(self):
        plan = compile_src(
            "pairs(n, y) :- docs(d), extractName(d, n), "
            "extractYear(d, y), immBefore(n, y).")
        m = DeltaMaintainer(plan)
        series = [
            {"u": "Alice Chen 1999 and Karen Xu\n"},
            {"u": "Alice Chen 1999 and Karen Xu 2004\n"},
        ]
        for snap, result in run_series(m, series):
            assert_matches_batch(m, snap)
        assert result.decision_counts().get("fallback") == 1
        assert result.fallback_ratio == 1.0

    def test_drain_check_catches_corrupted_state(self):
        m = DeltaMaintainer(compile_src(
            "names(v) :- docs(d), extractName(d, v)."))
        list(run_series(m, [{"a": "Alice Chen\n", "b": "Karen Xu\n"}]))
        # Corrupt page a's state behind the maintainer's back.
        state = m.states["a"]
        root_idx = m.plan_delta.root_index["names"]
        state.out[root_idx].apply(DeltaSet.from_rows([("bogus",)]))
        snap = snapshot_from_texts(1, {"b": "Karen Xu\n"})
        diff = Diff((), (), ("a",), ("b",), ())
        with pytest.raises((DeltaStateError,
                            NegativeMultiplicityError)):
            m.apply(snap, diff, check=True)

    def test_decision_counts_and_to_dict(self):
        m = DeltaMaintainer(compile_src(RICH_SRC))
        results = [r for _s, r in run_series(m, [
            {"u": PAGE}, {"u": PAGE.replace("2001", "2007")}])]
        data = results[1].to_dict()
        assert data["decisions"] == {"delta": 1}
        assert data["fallback_ratio"] == 0.0
        assert "extractor_calls" in data and "memo_hits" in data
