"""MentionMultiplier and the Figure 14 task rewrite."""

import pytest

from repro.corpus import wikipedia_corpus
from repro.core.runner import run_series, verify_agreement
from repro.extractors import MentionMultiplier, make_task, multiply_task_mentions
from repro.extractors.rules import RegexExtractor


def name_extractor():
    return RegexExtractor("names", r"(?P<v>[A-Z][a-z]+)",
                          groups={"v": "v"}, scope=30, context=2)


class TestMentionMultiplier:
    def test_replicates_with_copy_ids(self):
        wrapped = MentionMultiplier(name_extractor(), 3)
        got = wrapped.extract("Alice and Bob")
        assert len(got) == 6
        copy_ids = sorted(e.get("copy_id") for e in got
                          if e.get("v").start == 0)
        assert copy_ids == [0, 1, 2]

    def test_factor_one_keeps_single_copy(self):
        wrapped = MentionMultiplier(name_extractor(), 1)
        assert len(wrapped.extract("Alice")) == 1

    def test_rejects_factor_zero(self):
        with pytest.raises(ValueError):
            MentionMultiplier(name_extractor(), 0)

    def test_inherits_alpha_beta(self):
        inner = name_extractor()
        wrapped = MentionMultiplier(inner, 2)
        assert wrapped.scope == inner.scope
        assert wrapped.context == inner.context

    def test_copy_id_classified_as_scalar(self):
        wrapped = MentionMultiplier(name_extractor(), 2)
        assert "copy_id" in wrapped.scalars


class TestMultiplyTask:
    def test_only_leaf_blackboxes_multiplied(self):
        task = multiply_task_mentions(make_task("play", work_scale=0), 3)
        sec = task.registry.extractor("extractFilmSec")
        actor = task.registry.extractor("extractPlayActor")
        assert not isinstance(sec, MentionMultiplier)
        assert isinstance(actor, MentionMultiplier)

    def test_program_still_validates_and_runs(self):
        task = multiply_task_mentions(make_task("play", work_scale=0), 2)
        snaps = list(wikipedia_corpus(n_pages=6, seed=3).snapshots(3))
        reports = run_series(task, snaps, systems=("noreuse", "delex"))
        assert verify_agreement(reports) == []

    def test_final_mentions_unchanged(self):
        base = make_task("play", work_scale=0)
        task = multiply_task_mentions(base, 4)
        snaps = list(wikipedia_corpus(n_pages=6, seed=3).snapshots(1))
        base_reports = run_series(base, snaps, systems=("noreuse",))
        mult_reports = run_series(task, snaps, systems=("noreuse",))
        assert (base_reports["noreuse"].snapshots[0].results
                == mult_reports["noreuse"].snapshots[0].results)
