"""A restart-safe extraction deployment with rename tolerance.

Production shape of the library: crawled snapshots land in a
:class:`CorpusStore`; a :class:`DelexPipeline` extracts from each new
snapshot, persisting capture files, results, and a manifest next to
the corpus. Kill the process, build a new pipeline object, and it
resumes — still recycling the pre-restart IE results.

The corpus here also *renames* pages between crawls (site
reorganizations). The paper's same-URL matching scope would treat a
renamed page as brand new; the extended
:class:`~repro.reuse.FingerprintScope` pairs it with its old content
by shingle similarity and keeps the reuse.

Run:  python examples/durable_pipeline.py
"""

import tempfile

from repro import CorpusStore, DelexPipeline, FingerprintScope, make_task
from repro.corpus.evolve import ChangeModel, EvolvingCorpus
from repro.corpus.generators import WikipediaGenerator


def main() -> None:
    model = ChangeModel(p_unchanged=0.5, p_removed=0.0, p_added=0.02,
                        p_renamed=0.25, mean_edits=2.0)
    corpus = EvolvingCorpus(WikipediaGenerator(), 25, model, seed=13)
    snapshots = list(corpus.snapshots(5))

    with tempfile.TemporaryDirectory() as root:
        store = CorpusStore(f"{root}/crawl")
        task = make_task("award", work_scale=0.5)

        # --- process the first three crawls, then "crash" ----------------
        pipeline = DelexPipeline(store, task, scope=FingerprintScope())
        for snapshot in snapshots[:3]:
            result = pipeline.ingest(snapshot)
            print(f"crawl {snapshot.index}: {result.timings.total:6.3f}s, "
                  f"{result.total_mentions()} award mentions")
        print("process exits (state persisted on disk)\n")
        del pipeline

        # --- new process: resume and catch up ----------------------------
        resumed = DelexPipeline(store, make_task("award", work_scale=0.5),
                                scope=FingerprintScope())
        print(f"resumed at snapshot {resumed.processed_index}; "
              f"pending: {resumed.pending_indexes()}")
        for snapshot in snapshots[3:]:
            store.append(snapshot)
        for index, result in resumed.catch_up():
            copied = sum(s.copied_tuples
                         for s in result.unit_stats.values())
            print(f"crawl {index}: {result.timings.total:6.3f}s, "
                  f"{copied} tuples recycled across the restart")

        # --- query persisted results --------------------------------------
        latest = resumed.load_results(store.latest_index)
        rows = sorted(latest["award"])[:4]
        print(f"\n{len(latest['award'])} award mentions in the latest "
              "snapshot; sample:")
        for row in rows:
            fields = dict(row)
            print(f"  {fields['actor'][2]:<18}"
                  f"{fields['award'][2]:<38}{fields['year'][2]}")


if __name__ == "__main__":
    main()
