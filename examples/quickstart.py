"""Quickstart: recycle IE results across snapshots of an evolving corpus.

Builds a small Wikipedia-like corpus, runs the 4-blackbox "play" task
with the from-scratch baseline and with Delex, verifies both produce
identical mentions (Theorem 1), and prints the speedup.

Run:  python examples/quickstart.py
"""

from repro import make_task, run_series, verify_agreement, wikipedia_corpus


def main() -> None:
    # 1. An evolving corpus: 30 pages, 4 crawl snapshots. Most pages
    #    receive small edits between snapshots (Wikipedia-like).
    corpus = wikipedia_corpus(n_pages=30, seed=7)
    snapshots = list(corpus.snapshots(4))

    # 2. An IE task: play(actor, movie), extracted by a 4-blackbox
    #    xlog program (section -> sentence -> actor/movie extractors).
    task = make_task("play", work_scale=0.5)
    print("xlog program:")
    print(task.source)

    # 3. Run from-scratch and Delex over the same snapshots.
    reports = run_series(task, snapshots, systems=("noreuse", "delex"))

    # 4. Theorem 1: identical results.
    problems = verify_agreement(reports)
    print("result agreement:", "OK" if not problems else problems[:3])

    # 5. The payoff: per-snapshot runtimes (snapshot 0 is bootstrap).
    print(f"\n{'snapshot':>9} {'no-reuse':>10} {'delex':>10}")
    for nr, dx in zip(reports["noreuse"].snapshots,
                      reports["delex"].snapshots):
        print(f"{nr.snapshot_index:>9} {nr.seconds:>10.3f} "
              f"{dx.seconds:>10.3f}")
    total_nr = reports["noreuse"].total_seconds()
    total_dx = reports["delex"].total_seconds()
    print(f"\nDelex is {total_nr / max(total_dx, 1e-9):.1f}x faster over "
          "the reuse snapshots.")

    # 6. A few extracted mentions.
    rows = sorted(reports["delex"].snapshots[-1].results["play"])[:5]
    print("\nsample play(actor, movie) mentions:")
    for row in rows:
        fields = dict(row)
        print(f"  {fields['actor'][2]:<18} in {fields['movie'][2]}")


if __name__ == "__main__":
    main()
