"""Bring your own blackboxes: author a new IE task end to end.

Shows the full public API surface a downstream user touches:

1. implement extractors (here: a section extractor and a regex
   extractor with a scalar output) with honest (α, β) declarations;
2. register them and write an xlog program with an absorbed σ;
3. compile, inspect IE units and chains;
4. run the reuse engine with an explicit matcher assignment over two
   snapshots and confirm the outputs match from-scratch extraction.

Run:  python examples/custom_extractor.py
"""

import tempfile

from repro import Registry, compile_program, find_units, parse_program, partition_chains
from repro.core.noreuse import NoReuseSystem
from repro.core.runner import canonical_results
from repro.corpus.snapshot import snapshot_from_texts
from repro.extractors import RegexExtractor, SectionExtractor
from repro.reuse import PlanAssignment, ReuseEngine

PAGES_DAY_1 = {
    "http://lab/alerts": (
        "Lab status board\n"
        "== Incidents ==\n"
        "INC-1042 sev2 in storage cluster resolved after 45 minutes.\n"
        "INC-1043 sev1 in api gateway resolved after 120 minutes.\n"
        "== Notes ==\nmaintenance window friday\n"),
    "http://lab/weekly": (
        "Weekly report\n"
        "== Incidents ==\n"
        "INC-0990 sev3 in build farm resolved after 15 minutes.\n"),
}

# Day 2: one new incident line appears; everything else is unchanged.
PAGES_DAY_2 = {
    "http://lab/alerts": PAGES_DAY_1["http://lab/alerts"].replace(
        "== Notes ==",
        "INC-1044 sev2 in search tier resolved after 30 minutes.\n"
        "== Notes =="),
    "http://lab/weekly": PAGES_DAY_1["http://lab/weekly"],
}


def build_task():
    registry = Registry()
    registry.register_extractor(SectionExtractor(
        "incidentSection", "sec", header="Incidents",
        scope=4000, context=32))
    registry.register_extractor(RegexExtractor(
        "incidentFact",
        r"(?P<inc>INC-\d+) sev(?P<sev>\d) in (?P<comp>[a-z ]+) resolved "
        r"after (?P<mins>\d+) minutes",
        groups={"inc": "inc", "comp": "comp"},
        scalars={"sev": lambda m: int(m.group("sev")),
                 "mins": lambda m: int(m.group("mins"))},
        scope=120, context=8))
    program = parse_program("""
        slowSev2(inc, comp) :- docs(d), incidentSection(d, sec),
            incidentFact(sec, inc, comp, sev, mins),
            atLeast(mins, 30), atLeast(sev, 2).
    """, name="incidents")
    return registry, program


def main() -> None:
    registry, program = build_task()
    plan = compile_program(program, registry)
    units = find_units(plan)
    chains = partition_chains(units)
    print("IE units:", [u.uid for u in units])
    print("absorbed operators per unit:",
          {u.uid: [type(n).__name__ for n in u.absorbed] for u in units})
    print("IE chains:", chains)

    s1 = snapshot_from_texts(0, PAGES_DAY_1)
    s2 = snapshot_from_texts(1, PAGES_DAY_2)

    # Assign matchers by hand: suffix-automaton matching at the bottom
    # unit, recycled by the fact unit via RU.
    assignment = PlanAssignment({"incidentSection": "ST",
                                 "incidentFact": "RU"})
    engine = ReuseEngine(plan, units, assignment)
    with tempfile.TemporaryDirectory() as td:
        r1 = engine.run_snapshot(s1, None, None, f"{td}/0")
        r2 = engine.run_snapshot(s2, s1, f"{td}/0", f"{td}/1")

    print("\nday-2 slow sev>=2 incidents:")
    for row in sorted(r2.results["slowSev2"]):
        fields = dict(row)
        print(f"  {fields['inc'][2]}  ({fields['comp'][2].strip()})")

    copied = sum(s.copied_tuples for s in r2.unit_stats.values())
    extracted = sum(s.extracted_chars for s in r2.unit_stats.values())
    print(f"\nreuse on day 2: {copied} tuples copied, "
          f"{extracted} chars re-extracted")

    fresh = NoReuseSystem(plan).process(s2)
    assert canonical_results(r2) == canonical_results(fresh)
    print("matches from-scratch extraction: OK")


if __name__ == "__main__":
    main()
