"""A DBLife-style community portal refreshed daily.

The motivating scenario of the paper: a portal re-crawls its sources
every day and re-extracts community facts (talks, conference service,
advising relationships). Re-running IE from scratch took DBLife 8+
hours a day; Delex recycles yesterday's results.

This example runs three extraction tasks over six daily snapshots of a
DBLife-like corpus (96-98 % of pages identical day-over-day), shows the
matcher plan Delex picks per task, and the runtime decomposition.

Run:  python examples/dblife_portal.py
"""

import tempfile

from repro import dblife_corpus, make_task
from repro.core.delex import DelexSystem
from repro.core.noreuse import NoReuseSystem
from repro.plan import compile_program


def refresh_portal(task_name: str, snapshots, workdir: str) -> None:
    task = make_task(task_name, work_scale=0.5)
    plan = compile_program(task.program, task.registry)
    delex = DelexSystem(task, f"{workdir}/{task_name}")
    scratch = NoReuseSystem(plan)

    print(f"\n=== task: {task_name} "
          f"({len(task.blackboxes)} IE blackboxes) ===")
    prev = None
    for snapshot in snapshots:
        fresh = scratch.process(snapshot)
        result = delex.process(snapshot, prev)
        label = "bootstrap" if prev is None else "reuse"
        mentions = result.total_mentions()
        print(f"  day {snapshot.index}: {label:>9}  "
              f"delex {result.timings.total:6.3f}s  "
              f"from-scratch {fresh.timings.total:6.3f}s  "
              f"({mentions} mentions)")
        assert {r: frozenset(v) for r, v in result.results.items()} == \
            {r: frozenset(v) for r, v in fresh.results.items()}
        prev = snapshot
    print("  matcher plan:", delex.describe_plan())
    row = result.timings.as_row()
    print("  last-day decomposition: "
          + "  ".join(f"{k}={v:.3f}s" for k, v in row.items()))


def main() -> None:
    corpus = dblife_corpus(n_pages=60, seed=3)
    snapshots = list(corpus.snapshots(6))
    sizes = [f"{s.total_bytes() / 1024:.0f}KB" for s in snapshots]
    print("daily snapshots:", ", ".join(sizes))
    with tempfile.TemporaryDirectory() as workdir:
        for task_name in ("talk", "chair", "advise"):
            refresh_portal(task_name, snapshots, workdir)


if __name__ == "__main__":
    main()
