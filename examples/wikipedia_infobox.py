"""Learning-based infobox construction over evolving Wikipedia pages.

Reproduces the setting of the paper's Figure 15: a maximum-entropy
sentence segmenter feeds four linear-chain CRF field extractors that
build actor infoboxes (name, birth name, birth date, notable roles).
Wikipedia-like pages change heavily between snapshots, so page-level
reuse barely helps — but Delex recycles at the IE-unit level, where an
unchanged sentence means a CRF decode saved.

Run:  python examples/wikipedia_infobox.py
"""

import tempfile
from collections import defaultdict

from repro import make_task, wikipedia_corpus
from repro.core.delex import DelexSystem
from repro.core.noreuse import NoReuseSystem
from repro.plan import compile_program


def print_infoboxes(results, limit: int = 3) -> None:
    """Group per-attribute mentions into per-document infoboxes."""
    boxes = defaultdict(dict)
    for rel in ("name", "birthName", "birthDate", "roles"):
        for row in results[rel]:
            fields = dict(row)
            did = fields["d"][2][:40].split("\n")[0]
            boxes[did].setdefault(rel, fields["value"][2])
    for did, attrs in list(boxes.items())[:limit]:
        print(f"  page: {did!r}")
        for rel in ("name", "birthName", "birthDate", "roles"):
            if rel in attrs:
                print(f"    {rel:<10} {attrs[rel]}")


def main() -> None:
    corpus = wikipedia_corpus(n_pages=25, seed=17)
    snapshots = list(corpus.snapshots(4))
    task = make_task("infobox")
    print("learning-based program (5 blackboxes: 1 ME + 4 CRFs):")
    print(task.source)

    plan = compile_program(task.program, task.registry)
    scratch = NoReuseSystem(plan)
    with tempfile.TemporaryDirectory() as workdir:
        delex = DelexSystem(task, workdir)
        prev = None
        for snapshot in snapshots:
            fresh = scratch.process(snapshot)
            result = delex.process(snapshot, prev)
            speed = fresh.timings.total / max(result.timings.total, 1e-9)
            print(f"snapshot {snapshot.index}: delex "
                  f"{result.timings.total:6.3f}s, from-scratch "
                  f"{fresh.timings.total:6.3f}s ({speed:.1f}x)")
            prev = snapshot
        print("\nmatcher plan per IE unit:", delex.describe_plan())
        print("\nextracted infoboxes (sample):")
        print_infoboxes(result.results)


if __name__ == "__main__":
    main()
