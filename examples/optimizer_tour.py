"""A tour of the Delex cost-based optimizer (Section 6).

Walks through what the optimizer actually does for the 4-blackbox
"play" task:

1. partition the execution tree into IE chains;
2. estimate cost-model statistics from a small page sample;
3. price a few hand-picked plans with the Figure 7 cost model;
4. run Algorithm 1 and compare its pick against measured runtimes of
   several alternatives.

Run:  python examples/optimizer_tour.py
"""

import os
import tempfile

from repro import make_task, wikipedia_corpus
from repro.matchers import DN_NAME, RU_NAME, ST_NAME, UD_NAME
from repro.optimizer import collect_statistics, plan_cost, search_plan
from repro.plan import compile_program, find_units, partition_chains
from repro.reuse import PlanAssignment, ReuseEngine


def measure(plan, units, assignment, snaps, tmp):
    engine = ReuseEngine(plan, units, assignment)
    tag = assignment.describe().replace(",", "_").replace("=", "-")
    d0 = os.path.join(tmp, tag, "0")
    d1 = os.path.join(tmp, tag, "1")
    engine.run_snapshot(snaps[0], None, None, d0)
    result = engine.run_snapshot(snaps[1], snaps[0], d0, d1)
    return result.timings.total


def main() -> None:
    task = make_task("play", work_scale=0.5)
    plan = compile_program(task.program, task.registry)
    units = find_units(plan)
    chains = partition_chains(units)
    print("IE units :", [u.uid for u in units])
    print("IE chains:")
    for chain in chains:
        print("   ", chain)

    corpus = wikipedia_corpus(n_pages=24, seed=21)
    snaps = list(corpus.snapshots(3))

    # Capture snapshot 1 so statistics can read recorded regions.
    with tempfile.TemporaryDirectory() as tmp:
        bootstrap = ReuseEngine(plan, units, PlanAssignment.all_dn(units))
        cap = os.path.join(tmp, "bootstrap")
        bootstrap.run_snapshot(snaps[1], None, None, cap)

        stats = collect_statistics(plan, units, snaps[2], snaps[:2],
                                   sample_size=8, prev_capture_dir=cap)
        print(f"\nestimated change rate f = {stats.f:.2f} over "
              f"{stats.sample_pages} sampled pages")
        for uid, est in stats.units.items():
            print(f"  {uid:<18} a={est.a:5.1f}  l={est.l:7.1f}  "
                  f"g_ST={est.g.get('ST', 1):.2f}  "
                  f"g_UD={est.g.get('UD', 1):.2f}")

        print("\ncost-model estimates vs measured runtime "
              "(snapshot 1 -> 2):")
        bottom = units[0].uid
        uppers = [u.uid for u in units[1:]]
        candidates = {
            "all-DN (from scratch)":
                PlanAssignment({u.uid: DN_NAME for u in units}),
            "ST at bottom, RU above":
                PlanAssignment({bottom: ST_NAME,
                                **{u: RU_NAME for u in uppers}}),
            "UD at bottom, RU above":
                PlanAssignment({bottom: UD_NAME,
                                **{u: RU_NAME for u in uppers}}),
            "ST everywhere":
                PlanAssignment({u.uid: ST_NAME for u in units}),
        }
        for label, assignment in candidates.items():
            estimated = plan_cost(units, assignment, stats)
            measured = measure(plan, units, assignment, snaps[1:], tmp)
            print(f"  {label:<24} est {estimated:7.3f}s   "
                  f"measured {measured:7.3f}s")

        result = search_plan(units, stats, chains)
        print(f"\nAlgorithm 1 examined {result.considered} plans; "
              f"chain order: {result.chain_order}")
        print("selected:", result.assignment.describe())
        measured = measure(plan, units, result.assignment, snaps[1:], tmp)
        print(f"selected plan measured: {measured:.3f}s")


if __name__ == "__main__":
    main()
